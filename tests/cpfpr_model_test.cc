// Tests for the CPFPR model: expected-vs-observed FPR agreement for forced
// configurations (the Figure 4 property), selection sanity across
// workloads, and binned-vs-exact consistency.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/filter_builder.h"
#include "core/one_pbf.h"
#include "core/proteus.h"
#include "core/two_pbf.h"
#include "model/cpfpr.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace proteus {
namespace {

constexpr size_t kKeys = 20000;
constexpr size_t kSamples = 4000;
constexpr size_t kEval = 8000;
constexpr double kBpk = 12.0;

struct Workload {
  std::vector<uint64_t> keys;
  std::vector<RangeQuery> samples;  // for the model
  std::vector<RangeQuery> eval;     // held-out empty queries
};

Workload MakeWorkload(Dataset dataset, const QuerySpec& spec, uint64_t seed) {
  Workload w;
  w.keys = GenerateKeys(dataset, kKeys, seed);
  w.samples = GenerateQueries(w.keys, spec, kSamples, seed * 3 + 1);
  w.eval = GenerateQueries(w.keys, spec, kEval, seed * 7 + 2);
  return w;
}

template <typename Filter>
double ObservedFpr(const Filter& filter, const std::vector<RangeQuery>& qs) {
  size_t fp = 0;
  for (const auto& q : qs) {
    if (filter.MayContain(q.lo, q.hi)) ++fp;
  }
  return static_cast<double>(fp) / static_cast<double>(qs.size());
}

// Expected and observed FPR must agree within a tolerance that accounts for
// sampling noise and binning (Figure 4 shows near-perfect agreement at
// paper scale).
void ExpectClose(double expected, double observed, const char* what) {
  EXPECT_NEAR(expected, observed, 0.05 + 0.25 * expected)
      << what << ": expected=" << expected << " observed=" << observed;
}

TEST(CpfprModel, OnePbfAccuracyAcrossPrefixLengths) {
  QuerySpec spec;
  spec.dist = QueryDist::kUniform;
  spec.range_max = uint64_t{1} << 7;
  Workload w = MakeWorkload(Dataset::kUniform, spec, 101);
  CpfprModel model(w.keys, w.samples);
  uint64_t mem = static_cast<uint64_t>(kBpk * kKeys);
  for (uint32_t l : {30u, 40u, 50u, 56u, 60u, 64u}) {
    auto filter = OnePbfFilter::BuildWithConfig(w.keys, l, kBpk);
    double expected = model.OnePbfFpr(l, mem);
    double observed = ObservedFpr(*filter, w.eval);
    ExpectClose(expected, observed, ("1PBF l=" + std::to_string(l)).c_str());
  }
}

TEST(CpfprModel, OnePbfCaptures64MinusLogRmaxThreshold) {
  // Figure 4a: observed FPR rises sharply once prefix length passes
  // 64 - log2(RMAX).
  QuerySpec spec;
  spec.dist = QueryDist::kUniform;
  spec.range_max = uint64_t{1} << 11;
  Workload w = MakeWorkload(Dataset::kUniform, spec, 102);
  CpfprModel model(w.keys, w.samples);
  uint64_t mem = static_cast<uint64_t>(kBpk * kKeys);
  double fpr_below = model.OnePbfFpr(50, mem);   // below 64-11=53
  double fpr_above = model.OnePbfFpr(62, mem);   // above the threshold
  EXPECT_LT(fpr_below, 0.1);
  EXPECT_GT(fpr_above, fpr_below + 0.1);
}

TEST(CpfprModel, ProteusAccuracyOnSplitWorkload) {
  // The Figure 4c setting: Normal keys, split queries (short correlated +
  // long uniform).
  QuerySpec spec;
  spec.dist = QueryDist::kSplit;
  spec.range_max = uint64_t{1} << 19;
  spec.split_corr_range_max = uint64_t{1} << 3;
  spec.corr_degree = uint64_t{1} << 3;
  Workload w = MakeWorkload(Dataset::kNormal, spec, 103);
  CpfprModel model(w.keys, w.samples);
  uint64_t mem = static_cast<uint64_t>(kBpk * kKeys);
  struct Case {
    uint32_t l1, l2;
  };
  for (Case c : {Case{0, 40}, Case{0, 60}, Case{20, 60}, Case{24, 58},
                 Case{30, 62}}) {
    double expected = model.ProteusFpr(c.l1, c.l2, mem);
    if (expected > 1.0) continue;  // infeasible at this budget
    auto filter = ProteusFilter::BuildWithConfig(
        w.keys, ProteusFilter::Config{c.l1, c.l2}, kBpk);
    double observed = ObservedFpr(*filter, w.eval);
    ExpectClose(expected, observed,
                ("Proteus " + std::to_string(c.l1) + "/" +
                 std::to_string(c.l2)).c_str());
  }
}

TEST(CpfprModel, TwoPbfAccuracy) {
  QuerySpec spec;
  spec.dist = QueryDist::kSplit;
  spec.range_max = uint64_t{1} << 15;
  spec.split_corr_range_max = uint64_t{1} << 3;
  spec.corr_degree = uint64_t{1} << 3;
  Workload w = MakeWorkload(Dataset::kNormal, spec, 104);
  CpfprModel model(w.keys, w.samples);
  uint64_t mem = static_cast<uint64_t>(kBpk * kKeys);
  struct Case {
    uint32_t l1, l2;
  };
  for (Case c : {Case{30, 60}, Case{40, 58}, Case{50, 64}}) {
    double expected = model.TwoPbfFpr(c.l1, c.l2, 0.5, mem);
    auto filter = TwoPbfFilter::BuildWithConfig(
        w.keys, TwoPbfFilter::Config{c.l1, c.l2, 0.5}, kBpk);
    double observed = ObservedFpr(*filter, w.eval);
    ExpectClose(expected, observed,
                ("2PBF " + std::to_string(c.l1) + "/" + std::to_string(c.l2))
                    .c_str());
  }
}

TEST(CpfprModel, BinnedMatchesExact) {
  QuerySpec spec;
  spec.dist = QueryDist::kUniform;
  spec.range_max = uint64_t{1} << 16;  // wide spread of |Q_l|
  Workload w = MakeWorkload(Dataset::kUniform, spec, 105);
  CpfprModel model(w.keys, w.samples);
  uint64_t mem = static_cast<uint64_t>(kBpk * kKeys);
  for (uint32_t l : {40u, 48u, 56u, 64u}) {
    double binned = model.OnePbfFpr(l, mem);
    double exact = model.OnePbfFprExact(l, mem);
    EXPECT_NEAR(binned, exact, 0.02 + 0.1 * exact) << "1PBF l=" << l;
  }
  for (uint32_t l1 : {16u, 24u}) {
    for (uint32_t l2 : {56u, 64u}) {
      double binned = model.ProteusFpr(l1, l2, mem);
      double exact = model.ProteusFprExact(l1, l2, mem);
      if (binned > 1.0 || exact > 1.0) continue;
      EXPECT_NEAR(binned, exact, 0.02 + 0.1 * exact)
          << "Proteus " << l1 << "/" << l2;
    }
  }
}

TEST(CpfprModel, SelectionBeatsFixedDesignsOnSamples) {
  // The selected design's expected FPR must be minimal over the design
  // space (it is chosen by exhaustive search) and must hold up out of
  // sample.
  QuerySpec spec;
  spec.dist = QueryDist::kSplit;
  spec.range_max = uint64_t{1} << 19;
  spec.split_corr_range_max = uint64_t{1} << 3;
  spec.corr_degree = uint64_t{1} << 3;
  Workload w = MakeWorkload(Dataset::kNormal, spec, 106);
  CpfprModel model(w.keys, w.samples);
  uint64_t mem = static_cast<uint64_t>(kBpk * kKeys);
  ProteusDesign design = model.SelectProteus(mem);
  for (uint32_t l1 : {0u, 8u, 16u, 24u, 32u}) {
    for (uint32_t l2 : {0u, 40u, 56u, 64u}) {
      double fpr = model.ProteusFpr(l1, l2, mem);
      if (fpr > 1.0) continue;
      EXPECT_GE(fpr + 1e-12, design.expected_fpr)
          << "config " << l1 << "/" << l2 << " beats the selected design";
    }
  }
  // The FilterBuilder gathers an identical model from the same keys and
  // samples; the materialized filter must realize the selected design.
  FilterBuilder builder(w.keys);
  builder.Sample(w.samples);
  auto filter = ProteusFilter::BuildFromSpec(FilterSpec("proteus"), builder,
                                             nullptr);
  ASSERT_NE(filter, nullptr);
  EXPECT_EQ(filter->config().trie_depth, design.trie_depth);
  EXPECT_EQ(filter->config().bf_prefix_len, design.bf_prefix_len);
  double observed = ObservedFpr(*filter, w.eval);
  ExpectClose(design.expected_fpr, observed, "selected design");
}

TEST(CpfprModel, CorrelatedWorkloadPrefersDeepStructure) {
  // Small correlated queries need long prefixes; uniform large ranges need
  // short ones. The chosen designs must reflect that (Section 5.2).
  QuerySpec corr;
  corr.dist = QueryDist::kCorrelated;
  corr.range_max = uint64_t{1} << 3;
  corr.corr_degree = uint64_t{1} << 10;
  Workload wc = MakeWorkload(Dataset::kUniform, corr, 107);
  CpfprModel mc(wc.keys, wc.samples);
  uint64_t mem = static_cast<uint64_t>(kBpk * kKeys);
  OnePbfDesign dc = mc.SelectOnePbf(mem);

  QuerySpec uni;
  uni.dist = QueryDist::kUniform;
  uni.range_max = uint64_t{1} << 19;
  Workload wu = MakeWorkload(Dataset::kUniform, uni, 108);
  CpfprModel mu(wu.keys, wu.samples);
  OnePbfDesign du = mu.SelectOnePbf(mem);

  EXPECT_GT(dc.prefix_len, du.prefix_len)
      << "correlated=" << dc.prefix_len << " uniform=" << du.prefix_len;
  // Correlated queries land within corr_degree of a key: distinguishing
  // them needs prefixes beyond 64 - log2(corr_degree) = 54.
  EXPECT_GE(dc.prefix_len, 54u);
  // Large uniform ranges want few probes: at most ~2 regions per query.
  EXPECT_LE(du.prefix_len, 64u - 19u + 2u);
}

TEST(CpfprModel, ProteusSelectionNeverWorseThanOnePbf) {
  // Proteus's design space strictly contains 1PBF's (Section 5.1).
  for (uint64_t seed : {201u, 202u, 203u}) {
    QuerySpec spec;
    spec.dist = seed % 2 == 0 ? QueryDist::kUniform : QueryDist::kSplit;
    spec.range_max = uint64_t{1} << 15;
    spec.split_corr_range_max = uint64_t{1} << 4;
    Workload w = MakeWorkload(Dataset::kNormal, spec, seed);
    CpfprModel model(w.keys, w.samples);
    uint64_t mem = static_cast<uint64_t>(kBpk * kKeys);
    EXPECT_LE(model.SelectProteus(mem).expected_fpr,
              model.SelectOnePbf(mem).expected_fpr + 1e-12);
  }
}

TEST(CpfprModel, InfeasibleConfigsFlagged) {
  auto keys = GenerateKeys(Dataset::kUniform, 5000, 9);
  QuerySpec spec;
  auto samples = GenerateQueries(keys, spec, 500, 10);
  CpfprModel model(keys, samples);
  // A 64-deep trie cannot fit in 2 bits per key.
  EXPECT_EQ(model.ProteusFpr(64, 0, keys.size() * 2), CpfprModel::kInfeasible);
}

TEST(CpfprModel, BloomFprMatchesEqSix) {
  // 10 bits per item, k = 7: p = (1 - e^{-7/10})^7 ~ 0.00819.
  EXPECT_NEAR(CpfprModel::BloomFpr(10000, 1000), 0.00819, 0.0005);
  EXPECT_EQ(CpfprModel::BloomFpr(0, 10), 1.0);
  EXPECT_EQ(CpfprModel::BloomFpr(100, 0), 0.0);
}

}  // namespace
}  // namespace proteus
