// Tests for the dataset and query generators.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "workload/datasets.h"
#include "workload/queries.h"

namespace proteus {
namespace {

TEST(Datasets, SortedUniqueAndDeterministic) {
  for (Dataset d : {Dataset::kUniform, Dataset::kNormal, Dataset::kBooks,
                    Dataset::kFacebook}) {
    auto a = GenerateKeys(d, 5000, 7);
    auto b = GenerateKeys(d, 5000, 7);
    EXPECT_EQ(a, b) << DatasetName(d);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end())) << DatasetName(d);
    EXPECT_EQ(std::adjacent_find(a.begin(), a.end()), a.end())
        << DatasetName(d);
    EXPECT_EQ(a.size(), 5000u) << DatasetName(d);
    auto c = GenerateKeys(d, 5000, 8);
    EXPECT_NE(a, c) << DatasetName(d);
  }
}

TEST(Datasets, NormalIsCentered) {
  auto keys = GenerateKeys(Dataset::kNormal, 20000, 1);
  double mid = 9.223372036854776e18;
  size_t near_mid = 0;
  for (uint64_t k : keys) {
    // Within 4 sd = 0.04 * 2^64 of the mean.
    if (std::abs(static_cast<double>(k) - mid) < 7.4e17) ++near_mid;
  }
  EXPECT_GT(near_mid, keys.size() * 99 / 100);
}

TEST(Datasets, FacebookIsDense) {
  auto keys = GenerateKeys(Dataset::kFacebook, 10000, 2);
  uint64_t span = keys.back() - keys.front();
  EXPECT_LT(span, 10000ull * 17);  // max gap 16
  EXPECT_GE(span, 10000ull);       // min gap 1
}

TEST(Datasets, BooksIsSkewedLow) {
  auto keys = GenerateKeys(Dataset::kBooks, 20000, 3);
  // Median far below the midpoint of the key space.
  uint64_t median = keys[keys.size() / 2];
  EXPECT_LT(median, uint64_t{1} << 50);
  // But a heavy tail exists.
  EXPECT_GT(keys.back(), uint64_t{1} << 54);
}

TEST(Datasets, ValuePayloadCompressibleHalf) {
  std::string v = MakeValuePayload(12345, 512);
  ASSERT_EQ(v.size(), 512u);
  for (size_t i = 0; i < 256; ++i) ASSERT_EQ(v[i], '\0');
  size_t nonzero = 0;
  for (size_t i = 256; i < 512; ++i) {
    if (v[i] != '\0') ++nonzero;
  }
  EXPECT_GT(nonzero, 200u);  // random half
  EXPECT_EQ(MakeValuePayload(12345, 512), v);  // deterministic
}

class QueryGenTest : public ::testing::TestWithParam<QueryDist> {};

TEST_P(QueryGenTest, EmptyAndWellFormed) {
  auto keys = GenerateKeys(Dataset::kNormal, 10000, 4);
  std::vector<uint64_t> real_points;
  std::vector<uint64_t> keys2;
  GenerateKeysAndQueryPoints(Dataset::kNormal, 10000, 2000, 4, &keys2,
                             &real_points);
  QuerySpec spec;
  spec.dist = GetParam();
  spec.range_max = uint64_t{1} << 12;
  spec.corr_degree = uint64_t{1} << 10;
  QueryGenStats stats;
  auto queries = GenerateQueries(keys, spec, 3000, 5, real_points, &stats);
  ASSERT_EQ(queries.size(), 3000u);
  for (const auto& q : queries) {
    ASSERT_LE(q.lo, q.hi);
    ASSERT_TRUE(RangeIsEmpty(keys, q.lo, q.hi))
        << "[" << q.lo << "," << q.hi << "]";
    ASSERT_LE(q.hi - q.lo, spec.range_max);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDists, QueryGenTest,
                         ::testing::Values(QueryDist::kUniform,
                                           QueryDist::kCorrelated,
                                           QueryDist::kSplit,
                                           QueryDist::kReal),
                         [](const auto& info) {
                           return QueryDistName(info.param);
                         });

TEST(QueryGen, CorrelatedQueriesLandNearKeys) {
  auto keys = GenerateKeys(Dataset::kUniform, 10000, 6);
  QuerySpec spec;
  spec.dist = QueryDist::kCorrelated;
  spec.range_max = uint64_t{1} << 4;
  spec.corr_degree = uint64_t{1} << 10;
  auto queries = GenerateQueries(keys, spec, 2000, 7);
  for (const auto& q : queries) {
    auto it = std::lower_bound(keys.begin(), keys.end(), q.lo);
    ASSERT_NE(it, keys.begin());
    uint64_t pred = *(it - 1);
    ASSERT_LE(q.lo - pred, spec.corr_degree);
  }
}

TEST(QueryGen, PointQueries) {
  auto keys = GenerateKeys(Dataset::kUniform, 5000, 8);
  QuerySpec spec;
  spec.range_max = 0;
  auto queries = GenerateQueries(keys, spec, 1000, 9);
  for (const auto& q : queries) EXPECT_EQ(q.lo, q.hi);
}

TEST(QueryGen, MixedPointFraction) {
  auto keys = GenerateKeys(Dataset::kUniform, 5000, 10);
  QuerySpec spec;
  spec.range_max = uint64_t{1} << 10;
  spec.point_fraction = 0.5;
  auto queries = GenerateQueries(keys, spec, 4000, 11);
  size_t points = 0;
  for (const auto& q : queries) {
    if (q.lo == q.hi) ++points;
  }
  EXPECT_GT(points, 1700u);
  EXPECT_LT(points, 2300u);
}

TEST(QueryGen, NonEmptyAllowedWhenRequested) {
  auto keys = GenerateKeys(Dataset::kFacebook, 10000, 12);
  QuerySpec spec;
  spec.dist = QueryDist::kUniform;
  spec.range_max = uint64_t{1} << 8;
  spec.require_empty = false;
  auto queries = GenerateQueries(keys, spec, 500, 13);
  EXPECT_EQ(queries.size(), 500u);
}

TEST(QueryGen, DenseDataCorrelatedStillEmpty) {
  // Facebook-like density (gaps ~8) with correlated queries: the clamp
  // path must still deliver empty ranges.
  auto keys = GenerateKeys(Dataset::kFacebook, 20000, 14);
  QuerySpec spec;
  spec.dist = QueryDist::kCorrelated;
  spec.range_max = uint64_t{1} << 6;
  spec.corr_degree = uint64_t{1} << 6;
  QueryGenStats stats;
  auto queries = GenerateQueries(keys, spec, 1000, 15, {}, &stats);
  for (const auto& q : queries) {
    ASSERT_TRUE(RangeIsEmpty(keys, q.lo, q.hi));
  }
}

}  // namespace
}  // namespace proteus
