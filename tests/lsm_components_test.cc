// Unit tests for miniLSM's building blocks: skiplist, RLE codec, blocks,
// SST files, block cache, and the sample query queue.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "lsm/block.h"
#include "lsm/block_cache.h"
#include "lsm/query_queue.h"
#include "lsm/rle.h"
#include "lsm/skiplist.h"
#include "lsm/sst.h"
#include "surf/surf.h"
#include "util/random.h"

namespace proteus {
namespace {

TEST(SkipListTest, AddGetOrdered) {
  SkipList list;
  Rng rng(1);
  std::map<std::string, std::string> ref;
  uint64_t seqno = 0;
  for (int i = 0; i < 5000; ++i) {
    std::string k = EncodeKeyBE(rng.NextBelow(10000));
    std::string v = "v" + std::to_string(i);
    list.Add(k, ++seqno, v);
    ref[k] = v;
  }
  // Every Add is a new version; size counts versions, not keys.
  ASSERT_EQ(list.size(), 5000u);
  for (const auto& [k, v] : ref) {
    SkipList::Entry got;
    ASSERT_TRUE(list.Get(k, kMaxSequence, &got));
    EXPECT_EQ(got.value, v);  // newest version wins
  }
  // SeekGeq agrees with map::lower_bound (latest horizon).
  for (int i = 0; i < 2000; ++i) {
    std::string probe = EncodeKeyBE(rng.NextBelow(11000));
    SkipList::Entry e;
    auto it = ref.lower_bound(probe);
    if (it == ref.end()) {
      EXPECT_FALSE(list.SeekGeq(probe, kMaxSequence, &e));
    } else {
      ASSERT_TRUE(list.SeekGeq(probe, kMaxSequence, &e));
      EXPECT_EQ(e.key, it->first);
      EXPECT_EQ(e.value, it->second);
    }
  }
  // Ordered iteration: key ascending, seqno descending within a key.
  std::vector<std::pair<std::string, uint64_t>> order;
  list.ForEach([&](std::string_view k, uint64_t sq, std::string_view) {
    order.emplace_back(std::string(k), ~sq);  // flip so sorted = desc seqno
  });
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(order.size(), 5000u);
  list.Clear();
  EXPECT_EQ(list.size(), 0u);
  SkipList::Entry e;
  EXPECT_FALSE(list.SeekGeq("", kMaxSequence, &e));
}

TEST(SkipListTest, ByteCostAccounting) {
  SkipList list;
  // key.size() + value.size() + 8 bytes of seqno, per version added.
  EXPECT_EQ(list.Add("key", 1, "value"), 3 + 5 + 8);
  EXPECT_EQ(list.Add("key", 2, "valuelonger"), 3 + 11 + 8);
  EXPECT_EQ(list.size(), 2u);  // versions never overwrite
}

TEST(SkipListTest, SnapshotVisibility) {
  SkipList list;
  list.Add("k", 10, "v10");
  list.Add("k", 20, "v20");
  list.Add("k", 30, "v30");
  SkipList::Entry e;
  // A horizon between versions pins the newest at-or-below it.
  ASSERT_TRUE(list.Get("k", 25, &e));
  EXPECT_EQ(e.value, "v20");
  EXPECT_EQ(e.seqno, 20u);
  ASSERT_TRUE(list.Get("k", kMaxSequence, &e));
  EXPECT_EQ(e.value, "v30");
  // A horizon older than every version sees nothing.
  EXPECT_FALSE(list.Get("k", 9, &e));
  EXPECT_FALSE(list.SeekGeq("", 9, &e));
  // SeekGeq skips keys whose every version is too new.
  list.Add("a", 50, "new-only");
  ASSERT_TRUE(list.SeekGeq("", 25, &e));
  EXPECT_EQ(e.key, "k");
  EXPECT_EQ(e.value, "v20");
}

TEST(Rle, RoundTripPayloads) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    std::string input;
    size_t len = rng.NextBelow(4096);
    for (size_t i = 0; i < len; ++i) {
      // Mix of zero runs and random bytes.
      if (rng.NextBelow(3) == 0) {
        input.append(rng.NextBelow(64), '\0');
      } else {
        input.push_back(static_cast<char>(rng.NextBelow(256)));
      }
    }
    std::string compressed = RleCompress(input);
    std::string output;
    ASSERT_TRUE(RleDecompress(compressed, &output));
    ASSERT_EQ(output, input);
  }
}

TEST(Rle, HalfZeroPayloadCompressesToHalf) {
  // The paper's value layout: 512 bytes, first half zero (Section 6.2),
  // giving a compression ratio of ~0.5.
  std::string value(512, '\0');
  Rng rng(3);
  for (size_t i = 256; i < 512; ++i) {
    value[i] = static_cast<char>(1 + rng.NextBelow(255));
  }
  std::string compressed = RleCompress(value);
  double ratio = static_cast<double>(compressed.size()) / value.size();
  EXPECT_LT(ratio, 0.55);
  EXPECT_GT(ratio, 0.45);
}

TEST(Rle, IncompressibleFallsBackToRaw) {
  Rng rng(4);
  std::string input;
  for (int i = 0; i < 1000; ++i) {
    input.push_back(static_cast<char>(1 + rng.NextBelow(255)));
  }
  std::string compressed = RleCompress(input);
  EXPECT_LE(compressed.size(), input.size() + 1);
  std::string output;
  ASSERT_TRUE(RleDecompress(compressed, &output));
  EXPECT_EQ(output, input);
}

TEST(Rle, RejectsCorruptedInput) {
  std::string compressed = RleCompress(std::string(100, 'x'));
  std::string out;
  EXPECT_FALSE(RleDecompress("", &out));
  std::string bad = compressed;
  bad[0] = 7;  // invalid tag
  EXPECT_FALSE(RleDecompress(bad, &out));
  std::string truncated = compressed.substr(0, compressed.size() / 2);
  // Either detected as malformed or yields a wrong-size payload.
  if (RleDecompress(truncated, &out)) {
    EXPECT_NE(out.size(), 100u);
  }
}

TEST(Block, BuildAndSearch) {
  BlockBuilder builder;
  std::vector<std::string> keys;
  for (int i = 0; i < 200; ++i) {
    keys.push_back(EncodeKeyBE(i * 10));
  }
  for (const auto& k : keys) builder.Add(k, "val" + k);
  BlockReader reader;
  ASSERT_TRUE(reader.Init(builder.Finish()));
  ASSERT_EQ(reader.n_entries(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(reader.KeyAt(i), keys[i]);
    EXPECT_EQ(reader.ValueAt(i), "val" + keys[i]);
  }
  // LowerBound: exact hits and gaps.
  EXPECT_EQ(reader.LowerBound(EncodeKeyBE(0)), 0u);
  EXPECT_EQ(reader.LowerBound(EncodeKeyBE(55)), 6u);   // between 50 and 60
  EXPECT_EQ(reader.LowerBound(EncodeKeyBE(1990)), 199u);
  EXPECT_EQ(reader.LowerBound(EncodeKeyBE(99999)), reader.n_entries());
}

TEST(Block, ChecksumDetectsCorruption) {
  BlockBuilder builder;
  builder.Add("aaa", "1");
  builder.Add("bbb", "2");
  std::string payload = builder.Finish();
  payload[2] ^= 0x40;
  BlockReader reader;
  EXPECT_FALSE(reader.Init(std::move(payload)));
}

TEST(Sst, WriteReadRoundTrip) {
  std::string path = "/tmp/proteus_test_sst_1.sst";
  SstWriter::Options wopts;
  wopts.block_size = 512;  // force many blocks
  SstWriter writer(path, wopts);
  std::map<std::string, std::string> ref;
  for (uint64_t i = 0; i < 3000; ++i) {
    std::string k = EncodeKeyBE(i * 7 + 1);
    std::string v = "value" + std::to_string(i);
    // Format v4 stores tag | seqno | user bytes per value.
    writer.Add(k, MakeSstValueV4(kTagValue, i + 1, v));
    ref[k] = v;
  }
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.n_entries(), 3000u);
  EXPECT_EQ(writer.smallest(), EncodeKeyBE(1));
  EXPECT_EQ(writer.largest(), EncodeKeyBE(2999 * 7 + 1));

  BlockCache cache(1 << 20);
  SstReader reader;
  ASSERT_TRUE(reader.Open(path, 1, &cache).ok());
  ASSERT_EQ(reader.n_entries(), 3000u);
  EXPECT_GT(reader.n_blocks(), 10u);

  // SeekInRange across hits, gaps, and misses (latest horizon).
  const BlockReadOptions bro;
  SstReader::SeekEntry se;
  EXPECT_EQ(reader.SeekInRange(EncodeKeyBE(1), EncodeKeyBE(1), kMaxSequence,
                               bro, &se),
            0);
  EXPECT_EQ(se.key, EncodeKeyBE(1));
  EXPECT_EQ(reader.SeekInRange(EncodeKeyBE(2), EncodeKeyBE(7), kMaxSequence,
                               bro, &se),
            1);
  EXPECT_EQ(reader.SeekInRange(EncodeKeyBE(2), EncodeKeyBE(8), kMaxSequence,
                               bro, &se),
            0);
  EXPECT_EQ(se.key, EncodeKeyBE(8));
  EXPECT_EQ(reader.SeekInRange(EncodeKeyBE(999999), EncodeKeyBE(9999999),
                               kMaxSequence, bro, &se),
            1);

  // Full scan via the iterator matches the reference map (iterator
  // yields the raw stored bytes; decode per the footer version).
  SstReader::Iterator it(&reader);
  auto ref_it = ref.begin();
  size_t n = 0;
  for (; it.Valid(); it.Next(), ++ref_it, ++n) {
    ASSERT_NE(ref_it, ref.end());
    ASSERT_EQ(it.key(), ref_it->first);
    ParsedValue parsed;
    ASSERT_TRUE(ParseSstValue(reader.footer_version(), it.value(), &parsed));
    ASSERT_EQ(parsed.user_value, ref_it->second);
  }
  EXPECT_EQ(n, ref.size());
  ::unlink(path.c_str());
}

TEST(Sst, MultiVersionSnapshotResolution) {
  // A v4 file may hold several versions of one key, newest first; the
  // reader resolves visibility against the caller's horizon.
  std::string path = "/tmp/proteus_test_sst_mv.sst";
  SstWriter writer(path, SstWriter::Options{});
  writer.Add("k", MakeSstValueV4(kTagValue, 30, "v30"));
  writer.Add("k", MakeSstValueV4(kTagTombstone, 20, ""));
  writer.Add("k", MakeSstValueV4(kTagValue, 10, "v10"));
  writer.Add("z", MakeSstValueV4(kTagValue, 40, "z40"));
  ASSERT_TRUE(writer.Finish().ok());

  BlockCache cache(1 << 20);
  SstReader reader;
  ASSERT_TRUE(reader.Open(path, 3, &cache).ok());
  const BlockReadOptions bro;
  SstReader::SeekEntry se;
  ASSERT_EQ(reader.SeekInRange("a", "zz", kMaxSequence, bro, &se), 0);
  EXPECT_EQ(se.value, "v30");
  EXPECT_EQ(se.seqno, 30u);
  EXPECT_FALSE(se.tombstone);
  // Horizon 25 sees the tombstone (newest visible version of "k").
  ASSERT_EQ(reader.SeekInRange("a", "zz", 25, bro, &se), 0);
  EXPECT_TRUE(se.tombstone);
  EXPECT_EQ(se.seqno, 20u);
  // Horizon 15 sees v10.
  ASSERT_EQ(reader.SeekInRange("a", "zz", 15, bro, &se), 0);
  EXPECT_EQ(se.value, "v10");
  // Horizon 5: every version of "k" is invisible; nothing else <= 5.
  EXPECT_EQ(reader.SeekInRange("a", "zz", 5, bro, &se), 1);
  // Horizon 35: past "k", the only remaining key is "z"@40 — invisible.
  ASSERT_EQ(reader.SeekInRange(std::string("k\0", 2), "zz", 35, bro, &se), 1);
  ::unlink(path.c_str());
}

TEST(Sst, CompressedBlocks) {
  std::string path = "/tmp/proteus_test_sst_2.sst";
  SstWriter::Options wopts;
  wopts.compress = true;
  SstWriter writer(path, wopts);
  // Highly compressible values: mostly zeros.
  for (uint64_t i = 0; i < 1000; ++i) {
    writer.Add(EncodeKeyBE(i),
               MakeSstValueV4(kTagValue, i + 1, std::string(256, '\0') + "x"));
  }
  ASSERT_TRUE(writer.Finish().ok());
  // On-disk size far below raw data size.
  EXPECT_LT(writer.file_size(), 1000 * 260 / 2);
  BlockCache cache(1 << 20);
  SstReader reader;
  ASSERT_TRUE(reader.Open(path, 2, &cache).ok());
  SstReader::SeekEntry se;
  ASSERT_EQ(reader.SeekInRange(EncodeKeyBE(500), EncodeKeyBE(500),
                               kMaxSequence, BlockReadOptions{}, &se),
            0);
  EXPECT_EQ(se.value, std::string(256, '\0') + "x");
  ::unlink(path.c_str());
}

TEST(BlockCacheTest, LruEviction) {
  BlockCache cache(1000);
  auto block = [](size_t n) {
    return std::make_shared<const std::string>(std::string(n, 'b'));
  };
  cache.Insert(1, 0, block(400));
  cache.Insert(1, 400, block(400));
  EXPECT_NE(cache.Get(1, 0), nullptr);      // touch -> MRU
  cache.Insert(1, 800, block(400));          // evicts (1,400)
  EXPECT_NE(cache.Get(1, 0), nullptr);
  EXPECT_EQ(cache.Get(1, 400), nullptr);
  EXPECT_NE(cache.Get(1, 800), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.used_bytes(), 1000u);
}

TEST(BlockCacheTest, EraseFile) {
  BlockCache cache(10000);
  cache.Insert(7, 0, std::make_shared<const std::string>("abc"));
  cache.Insert(8, 0, std::make_shared<const std::string>("def"));
  cache.EraseFile(7);
  EXPECT_EQ(cache.Get(7, 0), nullptr);
  EXPECT_NE(cache.Get(8, 0), nullptr);
}

TEST(QueryQueueTest, ReservoirEvictionAndSampling) {
  SampleQueryQueue::Options opts;
  opts.capacity = 10;
  opts.sample_rate = 3;
  SampleQueryQueue queue(opts);
  for (int i = 0; i < 6000; ++i) {
    queue.OnEmptyQuery("lo" + std::to_string(i), "hi" + std::to_string(i));
  }
  // Every 3rd of 6000 queries = 2000 recorded; the reservoir never grows
  // past capacity, and the monotonic counters see everything.
  EXPECT_EQ(queue.size(), 10u);
  EXPECT_EQ(queue.seen(), 6000u);
  EXPECT_EQ(queue.sampled(), 2000u);
  // Geometric decay: the window is dominated by recent traffic. With
  // 2000 samples through 10 slots, expecting all survivors from the
  // last three quarters is conservative (P[slot older than 500 samples]
  // = 0.9^500 per slot).
  for (const auto& [lo, hi] : queue.Snapshot()) {
    EXPECT_GE(std::stoi(lo.substr(2)), 6000 / 4) << lo;
  }
}

TEST(QueryQueueTest, ZeroCapacityNeverGrows) {
  SampleQueryQueue::Options opts;
  opts.capacity = 0;
  opts.sample_rate = 1;
  SampleQueryQueue queue(opts);
  for (int i = 0; i < 100; ++i) queue.OnEmptyQuery("a", "b");
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.sampled(), 100u);  // signature still tracks the stream
  EXPECT_GE(queue.Signature(), 0.0);
}

TEST(QueryQueueTest, SeedBypassesSampling) {
  SampleQueryQueue queue;
  queue.Seed({{"a", "b"}, {"c", "d"}});
  EXPECT_EQ(queue.size(), 2u);
}

}  // namespace
}  // namespace proteus
