// Tests for the Rosetta baseline: no false negatives, doubting semantics,
// self-configuration behavior, and the probe-amplification property the
// paper leans on in Section 6.3.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/filter_builder.h"
#include "rosetta/rosetta.h"
#include "util/random.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace proteus {
namespace {

class RosettaNoFnTest : public ::testing::TestWithParam<Dataset> {};

TEST_P(RosettaNoFnTest, NoFalseNegatives) {
  auto keys = GenerateKeys(GetParam(), 4000, 61);
  QuerySpec spec;
  spec.dist = QueryDist::kUniform;
  spec.range_max = uint64_t{1} << 10;
  auto samples = GenerateQueries(keys, spec, 800, 62);
  auto filter = RosettaFilter::BuildSelfConfigured(keys, samples, 14.0);
  Rng rng(63);
  for (int i = 0; i < 1500; ++i) {
    uint64_t k = keys[rng.NextBelow(keys.size())];
    ASSERT_TRUE(filter->MayContain(k, k));
    uint64_t w = rng.NextBelow(uint64_t{1} << 9);
    uint64_t lo = k >= w ? k - w : 0;
    uint64_t hi = k <= ~uint64_t{0} - w ? k + w : ~uint64_t{0};
    ASSERT_TRUE(filter->MayContain(lo, hi));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RosettaNoFnTest,
                         ::testing::Values(Dataset::kUniform, Dataset::kNormal,
                                           Dataset::kBooks,
                                           Dataset::kFacebook),
                         [](const auto& info) {
                           return DatasetName(info.param);
                         });

TEST(Rosetta, PointQueriesMatchBloomBehavior) {
  // With point-query samples, Rosetta uses only the leaf level and behaves
  // like a full-key Bloom filter.
  auto keys = GenerateKeys(Dataset::kUniform, 20000, 64);
  QuerySpec spec;
  spec.range_max = 0;
  auto samples = GenerateQueries(keys, spec, 2000, 65);
  auto filter = RosettaFilter::BuildSelfConfigured(keys, samples, 12.0);
  EXPECT_EQ(filter->min_level(), 64u);
  auto probes = GenerateQueries(keys, spec, 20000, 66);
  int fp = 0;
  for (const auto& q : probes) fp += filter->MayContain(q.lo, q.hi);
  double fpr = static_cast<double>(fp) / probes.size();
  // ~12 BPK Bloom: sub-1% FPR.
  EXPECT_LT(fpr, 0.02) << fpr;
}

TEST(Rosetta, SmallCorrelatedRangesWellFiltered) {
  auto keys = GenerateKeys(Dataset::kUniform, 20000, 67);
  QuerySpec spec;
  spec.dist = QueryDist::kCorrelated;
  spec.range_max = uint64_t{1} << 4;
  spec.corr_degree = uint64_t{1} << 10;
  auto samples = GenerateQueries(keys, spec, 2000, 68);
  auto filter = RosettaFilter::BuildSelfConfigured(keys, samples, 14.0);
  auto eval = GenerateQueries(keys, spec, 10000, 69);
  int fp = 0;
  for (const auto& q : eval) fp += filter->MayContain(q.lo, q.hi);
  double fpr = static_cast<double>(fp) / eval.size();
  EXPECT_LT(fpr, 0.15) << fpr;
}

TEST(Rosetta, LargeRangesDegradeAndAmplifyProbes) {
  auto keys = GenerateKeys(Dataset::kUniform, 20000, 70);
  QuerySpec small;
  small.range_max = uint64_t{1} << 4;
  QuerySpec large;
  large.range_max = uint64_t{1} << 16;
  auto s_small = GenerateQueries(keys, small, 1000, 71);
  auto s_large = GenerateQueries(keys, large, 1000, 72);
  auto f_small = RosettaFilter::BuildSelfConfigured(keys, s_small, 12.0);
  auto f_large = RosettaFilter::BuildSelfConfigured(keys, s_large, 12.0);

  auto eval_large = GenerateQueries(keys, large, 2000, 73);
  uint64_t probes_large = 0;
  for (const auto& q : eval_large) {
    f_large->MayContain(q.lo, q.hi);
    probes_large += f_large->last_probe_count();
  }
  auto eval_small = GenerateQueries(keys, small, 2000, 74);
  uint64_t probes_small = 0;
  for (const auto& q : eval_small) {
    f_small->MayContain(q.lo, q.hi);
    probes_small += f_small->last_probe_count();
  }
  // The paper's Section 6.3 point: large ranges cost Rosetta many Bloom
  // probes per query.
  EXPECT_GT(probes_large, probes_small * 2);
}

TEST(Rosetta, SelfConfigurationPicksDeepLevels) {
  auto keys = GenerateKeys(Dataset::kUniform, 10000, 75);
  QuerySpec spec;
  spec.range_max = uint64_t{1} << 8;
  auto samples = GenerateQueries(keys, spec, 1000, 76);
  auto filter = RosettaFilter::BuildSelfConfigured(keys, samples, 12.0);
  // Sampled range sizes reach 2^8 + 1, so 9 levels are needed: 55..64.
  EXPECT_EQ(filter->min_level(), 55u);
}

TEST(Rosetta, ForcedConfigRespectsBudget) {
  auto keys = GenerateKeys(Dataset::kNormal, 10000, 77);
  RosettaFilter::Config config;
  config.min_level = 56;
  config.level_weights.assign(9, 1.0);
  auto filter = RosettaFilter::BuildWithConfig(keys, config, 12.0);
  EXPECT_LE(filter->SizeBits(), static_cast<uint64_t>(12.0 * keys.size() * 1.05));
  Rng rng(78);
  for (int i = 0; i < 500; ++i) {
    uint64_t k = keys[rng.NextBelow(keys.size())];
    ASSERT_TRUE(filter->MayContain(k, k));
  }
}

TEST(Rosetta, EmptyRangeFarFromKeysNegative) {
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 2000; ++i) {
    keys.push_back((uint64_t{0xAB} << 56) | (i * 99991));
  }
  QuerySpec spec;
  spec.range_max = uint64_t{1} << 6;
  auto samples = GenerateQueries(keys, spec, 500, 79);
  auto filter = RosettaFilter::BuildSelfConfigured(keys, samples, 14.0);
  int fp = 0;
  for (uint64_t q = 0; q < 300; ++q) {
    uint64_t base = (uint64_t{0x10} << 56) + q * 100000;
    fp += filter->MayContain(base, base + 30);
  }
  // Rosetta probes every leaf value of the range when upper levels are
  // starved (the bottom-heavy allocation), so the FPR floor here is about
  // range_size * leaf Bloom FPR ~ 31 * 0.002 ~ 6%.
  EXPECT_LT(fp, 45);
}

TEST(Rosetta, BlockedLayoutSelfConfigures) {
  auto keys = GenerateKeys(Dataset::kUniform, 4000, 81);
  QuerySpec spec;
  spec.dist = QueryDist::kCorrelated;
  spec.range_max = uint64_t{1} << 8;
  auto samples = GenerateQueries(keys, spec, 800, 82);
  auto blocked =
      RosettaFilter::BuildSelfConfigured(keys, samples, 14.0, true);
  auto standard =
      RosettaFilter::BuildSelfConfigured(keys, samples, 14.0, false);
  // Same workload, same budget, same level structure: only the Bloom
  // probe layout (and its FPR correction in the profile estimator)
  // differs.
  EXPECT_EQ(blocked->min_level(), standard->min_level());
  Rng rng(83);
  for (int i = 0; i < 1000; ++i) {
    uint64_t k = keys[rng.NextBelow(keys.size())];
    ASSERT_TRUE(blocked->MayContain(k, k));
    uint64_t w = rng.NextBelow(uint64_t{1} << 7);
    ASSERT_TRUE(blocked->MayContain(k >= w ? k - w : 0, k + w));
  }
}

TEST(Rosetta, BlockedSpecValidatesAndDefaults) {
  auto keys = GenerateKeys(Dataset::kUniform, 2000, 84);
  QuerySpec qspec;
  qspec.range_max = uint64_t{1} << 6;
  auto samples = GenerateQueries(keys, qspec, 400, 85);
  FilterBuilder builder(keys);
  builder.Sample(samples);
  std::string error;
  EXPECT_NE(builder.Build("rosetta:bpk=12", &error), nullptr) << error;
  EXPECT_NE(builder.Build("rosetta:bpk=12,blocked=0", &error), nullptr)
      << error;
  EXPECT_NE(builder.Build("rosetta:bpk=12,blocked=1", &error), nullptr)
      << error;
  EXPECT_EQ(builder.Build("rosetta:bpk=12,blocked=2", &error), nullptr);
  EXPECT_NE(error.find("blocked"), std::string::npos) << error;
}

}  // namespace
}  // namespace proteus
