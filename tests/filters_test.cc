// Property tests for the Protean Range Filters (Proteus, 1PBF, 2PBF):
// the cardinal invariant is NO FALSE NEGATIVES — any range that contains a
// key must return positive, for every configuration, dataset, and query
// shape.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "core/filter_builder.h"
#include "core/one_pbf.h"
#include "core/proteus.h"
#include "core/two_pbf.h"
#include "model/cpfpr.h"
#include "util/random.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace proteus {
namespace {

// Ranges guaranteed to contain at least one key: centered on keys with
// varying widths, plus exact point lookups.
std::vector<RangeQuery> ContainingRanges(const std::vector<uint64_t>& keys,
                                         uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<RangeQuery> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t k = keys[rng.NextBelow(keys.size())];
    uint64_t width = rng.NextBelow(4) == 0 ? 0 : (uint64_t{1} << rng.NextBelow(20));
    uint64_t lo = k >= width ? k - width : 0;
    uint64_t hi = k <= ~uint64_t{0} - width ? k + width : ~uint64_t{0};
    out.push_back({lo, hi});
  }
  return out;
}

class NoFalseNegativesTest
    : public ::testing::TestWithParam<std::tuple<Dataset, double /*bpk*/>> {};

TEST_P(NoFalseNegativesTest, ProteusForcedConfigs) {
  auto [dataset, bpk] = GetParam();
  auto keys = GenerateKeys(dataset, 4000, 21);
  auto probes = ContainingRanges(keys, 22, 1500);
  for (auto config : {ProteusFilter::Config{0, 64},   // pure full-key BF
                      ProteusFilter::Config{0, 40},   // pure prefix BF
                      ProteusFilter::Config{16, 48},  // hybrid
                      ProteusFilter::Config{24, 64},
                      ProteusFilter::Config{20, 0}}) {  // pure trie
    auto filter = ProteusFilter::BuildWithConfig(keys, config, bpk);
    for (const auto& q : probes) {
      ASSERT_TRUE(filter->MayContain(q.lo, q.hi))
          << filter->Name() << " missed [" << q.lo << "," << q.hi << "]";
    }
  }
}

TEST_P(NoFalseNegativesTest, SelfDesignedFilters) {
  auto [dataset, bpk] = GetParam();
  auto keys = GenerateKeys(dataset, 4000, 23);
  QuerySpec spec;
  spec.dist = QueryDist::kUniform;
  spec.range_max = uint64_t{1} << 10;
  auto samples = GenerateQueries(keys, spec, 800, 24);
  auto probes = ContainingRanges(keys, 25, 1000);

  FilterBuilder builder(keys);
  builder.Sample(samples);
  const std::string bpk_param = ":bpk=" + std::to_string(bpk);
  auto proteus = builder.Build("proteus" + bpk_param);
  auto one = builder.Build("onepbf" + bpk_param);
  auto two = builder.Build("twopbf" + bpk_param);
  for (const auto& q : probes) {
    ASSERT_TRUE(proteus->MayContain(q.lo, q.hi)) << proteus->Name();
    ASSERT_TRUE(one->MayContain(q.lo, q.hi)) << one->Name();
    ASSERT_TRUE(two->MayContain(q.lo, q.hi)) << two->Name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NoFalseNegativesTest,
    ::testing::Combine(::testing::Values(Dataset::kUniform, Dataset::kNormal,
                                         Dataset::kBooks, Dataset::kFacebook),
                       ::testing::Values(8.0, 14.0)),
    [](const auto& info) {
      return std::string(DatasetName(std::get<0>(info.param))) + "_bpk" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

TEST(ProteusFilter, PureTrieIsExactAtFullDepth) {
  auto keys = GenerateKeys(Dataset::kUniform, 2000, 31);
  auto filter = ProteusFilter::BuildWithConfig(
      keys, ProteusFilter::Config{64, 0}, 64.0);
  // Point queries: exact membership.
  Rng rng(32);
  for (int i = 0; i < 2000; ++i) {
    uint64_t q = rng.Next();
    bool in = std::binary_search(keys.begin(), keys.end(), q);
    EXPECT_EQ(filter->MayContain(q, q), in);
  }
  // Empty ranges between adjacent keys must be negative.
  for (size_t i = 0; i + 1 < keys.size(); i += 17) {
    if (keys[i] + 1 <= keys[i + 1] - 1 && keys[i] + 1 <= keys[i] + 2) {
      EXPECT_FALSE(filter->MayContain(keys[i] + 1,
                                      std::min(keys[i] + 2, keys[i + 1] - 1)));
    }
  }
}

TEST(ProteusFilter, SizeRespectsBudget) {
  auto keys = GenerateKeys(Dataset::kNormal, 10000, 33);
  for (double bpk : {8.0, 10.0, 14.0, 18.0}) {
    QuerySpec spec;
    auto samples = GenerateQueries(keys, spec, 1000, 34);
    auto filter = FilterBuilder(keys).Sample(samples).Build(
        "proteus:bpk=" + std::to_string(bpk));
    // Small slack: word-granularity rounding and rank overhead.
    EXPECT_LT(filter->Bpk(keys.size()), bpk * 1.20 + 1.0)
        << filter->Name() << " bpk=" << bpk;
  }
}

TEST(ProteusFilter, EmptyRangeFarFromKeysIsNegative) {
  // Keys clustered high; queries far below must be filtered by any decent
  // design.
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 1000; ++i) {
    keys.push_back((uint64_t{0xFFFF} << 48) + i * 12345);
  }
  auto filter = ProteusFilter::BuildWithConfig(
      keys, ProteusFilter::Config{16, 32}, 12.0);
  int positives = 0;
  for (uint64_t q = 0; q < 200; ++q) {
    if (filter->MayContain(q * 1000, q * 1000 + 500)) ++positives;
  }
  EXPECT_EQ(positives, 0);
}

TEST(TwoPbfFilter, DegeneratesToOnePbf) {
  auto keys = GenerateKeys(Dataset::kUniform, 3000, 35);
  auto two = TwoPbfFilter::BuildWithConfig(
      keys, TwoPbfFilter::Config{0, 56, 0.0}, 12.0);
  auto one = OnePbfFilter::BuildWithConfig(keys, 56, 12.0);
  // Identical structure: same probes, same bits.
  EXPECT_EQ(two->SizeBits(), one->SizeBits());
  Rng rng(36);
  for (int i = 0; i < 2000; ++i) {
    uint64_t a = rng.Next();
    uint64_t b = a + rng.NextBelow(1 << 12);
    if (b < a) continue;
    EXPECT_EQ(two->MayContain(a, b), one->MayContain(a, b));
  }
}

TEST(ProteusFilter, SelfDesignAdaptsToWorkloadShape) {
  auto keys = GenerateKeys(Dataset::kUniform, 10000, 37);
  // Large uniform ranges: expect a coarse design (short prefix / trie).
  QuerySpec uni;
  uni.dist = QueryDist::kUniform;
  uni.range_max = uint64_t{1} << 19;
  auto s_uni = GenerateQueries(keys, uni, 2000, 38);
  FilterBuilder b_uni(keys);
  b_uni.Sample(s_uni);
  auto f_uni = ProteusFilter::BuildFromSpec(FilterSpec("proteus"), b_uni,
                                            nullptr);

  // Tiny correlated ranges: expect a fine design (long Bloom prefix).
  QuerySpec corr;
  corr.dist = QueryDist::kCorrelated;
  corr.range_max = uint64_t{1} << 3;
  corr.corr_degree = uint64_t{1} << 8;
  auto s_corr = GenerateQueries(keys, corr, 2000, 39);
  FilterBuilder b_corr(keys);
  b_corr.Sample(s_corr);
  auto f_corr = ProteusFilter::BuildFromSpec(FilterSpec("proteus"), b_corr,
                                             nullptr);

  uint32_t uni_granularity = std::max(f_uni->config().trie_depth,
                                      f_uni->config().bf_prefix_len);
  uint32_t corr_granularity = std::max(f_corr->config().trie_depth,
                                       f_corr->config().bf_prefix_len);
  EXPECT_LT(uni_granularity, 64u);
  EXPECT_GE(corr_granularity, 56u);
}

TEST(OnePbfFilter, PointQueryConfigUsesFineGranularity) {
  // With point queries, any prefix length beyond the key-collision depth
  // performs near-identically (|Q_l| = 1 everywhere); the chosen design
  // must be at least that fine and no worse than the full-key filter.
  auto keys = GenerateKeys(Dataset::kUniform, 5000, 40);
  QuerySpec spec;
  spec.range_max = 0;  // point queries
  auto samples = GenerateQueries(keys, spec, 1000, 41);
  CpfprModel model(keys, samples);
  uint64_t mem = static_cast<uint64_t>(12.0 * keys.size());
  OnePbfDesign d = model.SelectOnePbf(mem);
  EXPECT_GE(d.prefix_len, 20u);
  EXPECT_LE(d.expected_fpr, model.OnePbfFpr(64, mem) + 1e-9);
}

}  // namespace
}  // namespace proteus
