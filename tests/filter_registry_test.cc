// The unified filter API: spec-string parsing (including malformed-spec
// error paths), registry lookup and creation for every family, and the
// FilterBuilder Sample() -> Design() -> Build() flow.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/filter_builder.h"
#include "core/filter_registry.h"
#include "core/filter_spec.h"
#include "core/proteus.h"
#include "core/two_pbf.h"
#include "lsm/filter_policy.h"
#include "workload/datasets.h"
#include "workload/queries.h"
#include "workload/string_gen.h"

namespace proteus {
namespace {

// ---------------------------------------------------------------------------
// FilterSpec parsing
// ---------------------------------------------------------------------------

TEST(FilterSpec, ParsesFamilyOnly) {
  FilterSpec spec;
  ASSERT_TRUE(FilterSpec::Parse("proteus", &spec));
  EXPECT_EQ(spec.family(), "proteus");
  EXPECT_TRUE(spec.params().empty());
  EXPECT_EQ(spec.ToString(), "proteus");
}

TEST(FilterSpec, ParsesParameters) {
  FilterSpec spec;
  ASSERT_TRUE(FilterSpec::Parse("surf:mode=real,suffix=8", &spec));
  EXPECT_EQ(spec.family(), "surf");
  EXPECT_EQ(spec.GetString("mode", ""), "real");
  uint32_t suffix = 0;
  EXPECT_TRUE(spec.GetUint32("suffix", 0, &suffix));
  EXPECT_EQ(suffix, 8u);
  EXPECT_EQ(spec.ToString(), "surf:mode=real,suffix=8");
}

TEST(FilterSpec, TypedGettersReturnDefaultsWhenAbsent) {
  FilterSpec spec;
  ASSERT_TRUE(FilterSpec::Parse("proteus", &spec));
  double bpk = 0;
  EXPECT_TRUE(spec.GetDouble("bpk", 12.5, &bpk));
  EXPECT_DOUBLE_EQ(bpk, 12.5);
  uint32_t trie = 7;
  EXPECT_TRUE(spec.GetUint32("trie", 3, &trie));
  EXPECT_EQ(trie, 3u);
}

TEST(FilterSpec, MalformedSpecsAreRejectedWithMessages) {
  const char* bad[] = {
      "",                    // empty
      ":bpk=12",             // empty family
      "proteus:",            // dangling colon
      "proteus:bpk",         // parameter without '='
      "proteus:=12",         // empty key
      "proteus:bpk=1,bpk=2", // duplicate key
  };
  for (const char* spec_str : bad) {
    FilterSpec spec;
    std::string error;
    EXPECT_FALSE(FilterSpec::Parse(spec_str, &spec, &error)) << spec_str;
    EXPECT_FALSE(error.empty()) << spec_str;
  }
}

TEST(FilterSpec, MalformedValuesFailTypedGetters) {
  FilterSpec spec;
  ASSERT_TRUE(FilterSpec::Parse("proteus:bpk=fast,trie=-4", &spec));
  double bpk;
  std::string error;
  EXPECT_FALSE(spec.GetDouble("bpk", 12, &bpk, &error));
  EXPECT_NE(error.find("bpk=fast"), std::string::npos);
  uint32_t trie;
  EXPECT_FALSE(spec.GetUint32("trie", 0, &trie, &error));
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(FilterRegistry, AllBuiltinFamiliesAreRegistered) {
  auto names = FilterRegistry::Global().FamilyNames();
  for (const char* expected :
       {"proteus", "onepbf", "twopbf", "rosetta", "surf", "surf-str",
        "proteus-str", "bloom", "bloom-str"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(FilterRegistry, AliasesResolve) {
  const auto& registry = FilterRegistry::Global();
  EXPECT_EQ(registry.Find("1pbf"), registry.Find("onepbf"));
  EXPECT_EQ(registry.Find("2pbf"), registry.Find("twopbf"));
  EXPECT_EQ(registry.Find("nonexistent"), nullptr);
}

TEST(FilterRegistry, DuplicateRegistrationIsRejected) {
  FilterFamily dup;
  dup.name = "proteus";
  EXPECT_FALSE(FilterRegistry::Global().Register(std::move(dup)));
  FilterFamily dup_id;
  dup_id.name = "proteus-duplicate-id";
  dup_id.family_id = ProteusFilter::kFamilyId;
  EXPECT_FALSE(FilterRegistry::Global().Register(std::move(dup_id)));
}

TEST(FilterRegistry, EveryIntFamilyIsConstructibleFromSpecStrings) {
  auto keys = GenerateKeys(Dataset::kUniform, 4000, 51);
  QuerySpec qspec;
  qspec.range_max = uint64_t{1} << 8;
  auto samples = GenerateQueries(keys, qspec, 500, 52);
  for (const char* spec :
       {"proteus:bpk=12", "onepbf:bpk=12", "twopbf:bpk=12", "rosetta:bpk=12",
        "surf:mode=real,suffix=8", "bloom:bpk=12", "1pbf:bpk=10",
        "proteus:trie=16,bloom=48"}) {
    std::string error;
    auto filter =
        FilterRegistry::Global().Create(spec, keys, samples, &error);
    ASSERT_NE(filter, nullptr) << spec << ": " << error;
    EXPECT_GT(filter->SizeBits(), 0u) << spec;
    // Sanity: a range centered on a key is always positive.
    EXPECT_TRUE(filter->MayContain(keys[100], keys[100]));
  }
}

TEST(FilterRegistry, EveryStrFamilyIsConstructibleFromSpecStrings) {
  auto keys = GenerateStrKeys(StrDataset::kDomains, 2000, 0, 53);
  for (const char* spec :
       {"proteus-str:bpk=14", "surf-str:mode=real,suffix=8",
        "bloom-str:bpk=12"}) {
    std::string error;
    auto filter = FilterRegistry::Global().CreateStr(spec, keys, {}, &error);
    ASSERT_NE(filter, nullptr) << spec << ": " << error;
    EXPECT_TRUE(filter->MayContain(keys[10], keys[10])) << spec;
  }
}

TEST(FilterRegistry, ProteusStrTrieGridIsExposedInSpecStrings) {
  auto keys = GenerateStrKeys(StrDataset::kDomains, 2000, 0, 57);
  StrQuerySpec qspec;
  auto samples = GenerateStrQueries(keys, qspec, 500, 58);
  // A coarser trie grid is a legal self-design knob: the filter still
  // builds and answers member ranges positively.
  for (const char* spec :
       {"proteus-str:bpk=14,trie_grid=8",
        "proteus-str:bpk=14,stride=4,trie_grid=16"}) {
    std::string error;
    auto filter =
        FilterRegistry::Global().CreateStr(spec, keys, samples, &error);
    ASSERT_NE(filter, nullptr) << spec << ": " << error;
    EXPECT_GT(filter->SizeBits(), 0u) << spec;
    EXPECT_TRUE(filter->MayContain(keys[10], keys[10])) << spec;
  }
  // Malformed values fail at build time with a message, like every other
  // spec parameter.
  std::string error;
  auto filter = FilterRegistry::Global().CreateStr(
      "proteus-str:bpk=14,trie_grid=coarse", keys, samples, &error);
  EXPECT_EQ(filter, nullptr);
  EXPECT_NE(error.find("not an unsigned integer"), std::string::npos)
      << error;
}

TEST(FilterRegistry, BadSpecsFailWithErrors) {
  auto keys = GenerateKeys(Dataset::kUniform, 500, 54);
  struct Case {
    const char* spec;
    const char* needle;  // substring expected in the error message
  } cases[] = {
      {"nosuchfamily:bpk=1", "unknown filter family"},
      {"proteus:bogus=1", "unknown parameter"},
      {"proteus:bpk=fast", "not a number"},
      {"proteus:bpk=-2", "positive"},
      {"surf:mode=weird", "mode"},
      {"surf:suffix=99", "<= 64"},
      {"twopbf:l1=8,l2=16,frac1=1.5", "frac1"},
      {"onepbf:prefix=65", "[1, 64]"},
      {"proteus:trie=70,bloom=48", "<= 64"},
      {"twopbf:l1=12,l2=80", "l1/l2"},
      {"proteus-str:bpk=12", "no integer-key builder"},
      {"", "empty filter spec"},
  };
  for (const Case& c : cases) {
    std::string error;
    auto filter = FilterRegistry::Global().Create(c.spec, keys, {}, &error);
    EXPECT_EQ(filter, nullptr) << c.spec;
    EXPECT_NE(error.find(c.needle), std::string::npos)
        << c.spec << " -> " << error;
  }
  // String side: an int-only family through CreateStr.
  std::string error;
  auto filter = FilterRegistry::Global().CreateStr(
      "proteus:bpk=12", GenerateStrKeys(StrDataset::kDomains, 100, 0, 55), {},
      &error);
  EXPECT_EQ(filter, nullptr);
  EXPECT_NE(error.find("no string-key builder"), std::string::npos);
}

TEST(FilterRegistry, ForcedConfigurationsAreHonored) {
  auto keys = GenerateKeys(Dataset::kNormal, 3000, 56);
  auto filter =
      FilterRegistry::Global().Create("proteus:trie=16,bloom=48", keys);
  ASSERT_NE(filter, nullptr);
  auto* proteus = dynamic_cast<ProteusFilter*>(filter.get());
  ASSERT_NE(proteus, nullptr);
  EXPECT_EQ(proteus->config().trie_depth, 16u);
  EXPECT_EQ(proteus->config().bf_prefix_len, 48u);
  EXPECT_FALSE(proteus->modeled_fpr().has_value());

  auto two = FilterRegistry::Global().Create("2pbf:l1=12,l2=32,frac1=0.3",
                                             keys);
  ASSERT_NE(two, nullptr);
  auto* two_pbf = dynamic_cast<TwoPbfFilter*>(two.get());
  ASSERT_NE(two_pbf, nullptr);
  EXPECT_EQ(two_pbf->config().l1, 12u);
  EXPECT_EQ(two_pbf->config().l2, 32u);
  EXPECT_DOUBLE_EQ(two_pbf->config().frac1, 0.3);
}

// ---------------------------------------------------------------------------
// FilterBuilder flow
// ---------------------------------------------------------------------------

TEST(FilterBuilder, ModelIsSharedAcrossFamiliesAndBudgets) {
  auto keys = GenerateKeys(Dataset::kUniform, 8000, 57);
  QuerySpec qspec;
  qspec.dist = QueryDist::kCorrelated;
  qspec.range_max = uint64_t{1} << 6;
  auto samples = GenerateQueries(keys, qspec, 1000, 58);

  FilterBuilder builder(keys);
  builder.Sample(samples);
  const CpfprModel* model = builder.DesignOrNull();
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model, builder.DesignOrNull());  // cached, not recomputed

  // A budget sweep through one builder matches fresh per-budget builds.
  for (double bpk : {8.0, 12.0, 16.0}) {
    std::string spec = "proteus:bpk=" + std::to_string(bpk);
    auto swept = builder.Build(spec);
    auto fresh = FilterRegistry::Global().Create(spec, keys, samples);
    ASSERT_NE(swept, nullptr);
    ASSERT_NE(fresh, nullptr);
    EXPECT_EQ(swept->SizeBits(), fresh->SizeBits()) << spec;
    EXPECT_EQ(swept->Name(), fresh->Name()) << spec;
  }
}

TEST(FilterBuilder, NoSamplesFallsBackToPointFilteringDesigns) {
  auto keys = GenerateKeys(Dataset::kUniform, 2000, 59);
  FilterBuilder builder(keys);
  EXPECT_EQ(builder.DesignOrNull(), nullptr);
  auto filter = builder.Build("proteus:bpk=12");
  ASSERT_NE(filter, nullptr);
  auto* proteus = dynamic_cast<ProteusFilter*>(filter.get());
  ASSERT_NE(proteus, nullptr);
  // No workload signal: full-key prefix Bloom filter.
  EXPECT_EQ(proteus->config().trie_depth, 0u);
  EXPECT_EQ(proteus->config().bf_prefix_len, 64u);
}

// ---------------------------------------------------------------------------
// LSM policy layer
// ---------------------------------------------------------------------------

TEST(MakeFilterPolicy, SpecStringsSelectEveryFamily) {
  for (const char* spec :
       {"none", "bloom-str:bpk=12", "proteus:bpk=14",
        "surf:mode=real,suffix=4", "rosetta:bpk=12",
        "proteus-str:bpk=14,max_key_bits=256,stride=4"}) {
    Status status;
    auto policy = MakeFilterPolicy(spec, &status);
    ASSERT_NE(policy, nullptr) << spec << ": " << status.ToString();
  }
}

TEST(MakeFilterPolicy, BadSpecsFailAtCreationTime) {
  for (const char* spec :
       {"nosuch:bpk=1", "proteus:bpk=fast", "proteus:bogus=3",
        "none:bpk=12", "surf:mode=weird", ""}) {
    Status status;
    auto policy = MakeFilterPolicy(spec, &status);
    EXPECT_EQ(policy, nullptr) << spec;
    EXPECT_TRUE(status.IsInvalidArgument()) << spec;
  }
}

}  // namespace
}  // namespace proteus
