// The batched query engine: scheduler registry + plan properties,
// randomized MultiSeek ≡ sequential-Seek equivalence (tombstones,
// filters, across reopen), per-batch stats, and the sample-queue feed.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "engine/scheduler.h"
#include "lsm/db.h"
#include "surf/surf.h"
#include "util/random.h"

namespace proteus {
namespace {

DbOptions SmallDbOptions(const std::string& name) {
  DbOptions options;
  options.dir = "/tmp/proteus_engine_test_" + name;
  options.memtable_bytes = 64 << 10;
  options.sst_target_bytes = 128 << 10;
  options.block_size = 1024;
  options.block_cache_bytes = 1 << 20;
  options.l0_compaction_trigger = 3;
  options.l1_size_bytes = 256 << 10;
  options.level_size_multiplier = 4.0;
  return options;
}

QueryBatch RandomBatch(Rng& rng, size_t n) {
  QueryBatch batch;
  for (size_t i = 0; i < n; ++i) {
    uint64_t k = rng.NextBelow(5000) * 1000;
    uint64_t span = rng.NextBelow(8000);
    batch.push_back({EncodeKeyBE(k > span ? k - span : 0),
                     EncodeKeyBE(k + span)});
  }
  return batch;
}

// --- scheduler registry + plan properties ---

TEST(SchedulerTest, RegistryResolvesFamiliesAndAliases) {
  auto& registry = SchedulerRegistry::Global();
  for (const char* spec : {"fifo", "sorted", "key-sorted", "grouped",
                           "per-sst"}) {
    std::string error;
    auto scheduler = registry.Create(spec, &error);
    ASSERT_NE(scheduler, nullptr) << spec << ": " << error;
  }
  std::string error;
  EXPECT_EQ(registry.Create("no-such-scheduler", &error), nullptr);
  EXPECT_NE(error.find("unknown scheduler"), std::string::npos) << error;
  // The builtins take no parameters.
  EXPECT_EQ(registry.Create("sorted:foo=1", &error), nullptr);
}

TEST(SchedulerTest, PlansArePermutations) {
  Rng rng(17);
  QueryBatch batch = RandomBatch(rng, 100);
  ScheduleContext context;
  for (int i = 0; i < 8; ++i) {
    context.file_boundaries.push_back(EncodeKeyBE(i * 600000));
  }
  for (const char* spec : {"fifo", "sorted", "grouped"}) {
    auto scheduler = SchedulerRegistry::Global().Create(spec);
    ASSERT_NE(scheduler, nullptr);
    std::vector<uint32_t> order;
    scheduler->Plan(batch, context, &order);
    ASSERT_EQ(order.size(), batch.size()) << spec;
    std::vector<uint32_t> sorted_order = order;
    std::sort(sorted_order.begin(), sorted_order.end());
    for (uint32_t i = 0; i < sorted_order.size(); ++i) {
      ASSERT_EQ(sorted_order[i], i) << spec << " is not a permutation";
    }
  }
}

TEST(SchedulerTest, FifoKeepsArrivalOrder) {
  Rng rng(18);
  QueryBatch batch = RandomBatch(rng, 50);
  auto scheduler = SchedulerRegistry::Global().Create("fifo");
  std::vector<uint32_t> order;
  scheduler->Plan(batch, ScheduleContext(), &order);
  for (uint32_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, SortedOrdersByLowerBound) {
  Rng rng(19);
  QueryBatch batch = RandomBatch(rng, 200);
  auto scheduler = SchedulerRegistry::Global().Create("sorted");
  std::vector<uint32_t> order;
  scheduler->Plan(batch, ScheduleContext(), &order);
  ASSERT_EQ(order.size(), batch.size());
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(batch[order[i - 1]].lo, batch[order[i]].lo);
  }
}

TEST(SchedulerTest, GroupedClustersByFileThenSortsByKey) {
  Rng rng(20);
  QueryBatch batch = RandomBatch(rng, 200);
  ScheduleContext context;
  for (int i = 0; i < 10; ++i) {
    context.file_boundaries.push_back(EncodeKeyBE(i * 500000));
  }
  auto bucket_of = [&](const StrRangeQuery& q) {
    auto it = std::upper_bound(context.file_boundaries.begin(),
                               context.file_boundaries.end(), q.lo);
    return it == context.file_boundaries.begin()
               ? 0
               : static_cast<int>(it - context.file_boundaries.begin()) - 1;
  };
  auto scheduler = SchedulerRegistry::Global().Create("grouped");
  std::vector<uint32_t> order;
  scheduler->Plan(batch, context, &order);
  ASSERT_EQ(order.size(), batch.size());
  for (size_t i = 1; i < order.size(); ++i) {
    const auto& prev = batch[order[i - 1]];
    const auto& cur = batch[order[i]];
    ASSERT_LE(bucket_of(prev), bucket_of(cur)) << "buckets out of order";
    if (bucket_of(prev) == bucket_of(cur)) {
      EXPECT_LE(prev.lo, cur.lo) << "keys out of order within a bucket";
    }
  }
  // Without layout hints, grouped degrades to key order.
  scheduler->Plan(batch, ScheduleContext(), &order);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(batch[order[i - 1]].lo, batch[order[i]].lo);
  }
}

// --- MultiSeek ≡ Seek ---

// Runs random batches against a DB and asserts MultiSeek's results equal
// a sequential Seek loop's, for every builtin scheduler.
void CheckEquivalence(Db& db, Rng& rng, int batches, size_t batch_size) {
  std::vector<std::string> specs = {"fifo", "sorted", "grouped"};
  for (int round = 0; round < batches; ++round) {
    QueryBatch batch = RandomBatch(rng, batch_size);
    std::vector<std::vector<MultiSeekResult>> all(specs.size());
    for (size_t s = 0; s < specs.size(); ++s) {
      auto scheduler = SchedulerRegistry::Global().Create(specs[s]);
      ASSERT_NE(scheduler, nullptr);
      db.MultiSeek(batch, *scheduler, &all[s]);
      ASSERT_EQ(all[s].size(), batch.size());
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      SeekResult seq = db.Seek(batch[i].lo, batch[i].hi);
      for (size_t s = 0; s < specs.size(); ++s) {
        const MultiSeekResult& r = all[s][i];
        ASSERT_EQ(r.found, seq.found)
            << specs[s] << " round " << round << " query " << i;
        ASSERT_EQ(r.status.ok(), seq.status.ok()) << specs[s];
        if (seq.found) {
          ASSERT_EQ(r.key, seq.key) << specs[s] << " query " << i;
          ASSERT_EQ(r.value, seq.value) << specs[s] << " query " << i;
        }
      }
    }
  }
}

void FillRandom(Db& db, Rng& rng, int ops, double delete_frac) {
  for (int op = 0; op < ops; ++op) {
    uint64_t k = rng.NextBelow(5000) * 1000;
    std::string key = EncodeKeyBE(k);
    if (rng.NextBelow(1000) < static_cast<uint64_t>(delete_frac * 1000)) {
      ASSERT_TRUE(db.Delete(key).ok());
    } else {
      std::string value = "v" + std::to_string(op) + std::string(40, 'e');
      ASSERT_TRUE(db.Put(key, value).ok());
    }
    if (op % 2500 == 2499) {
      ASSERT_TRUE(db.Flush().ok());
    }
  }
}

TEST(MultiSeekTest, MatchesSeekWithoutFilters) {
  auto [db, st] = Db::Create(SmallDbOptions("plain"));
  ASSERT_TRUE(st.ok());
  Rng rng(21);
  FillRandom(*db, rng, 12000, 0.2);
  CheckEquivalence(*db, rng, 20, 64);
}

TEST(MultiSeekTest, MatchesSeekWithFilters) {
  auto options = SmallDbOptions("filtered");
  options.filter_policy = MakeProteusIntPolicy(14.0);
  auto [db, st] = Db::Create(options);
  ASSERT_TRUE(st.ok());
  Rng rng(22);
  FillRandom(*db, rng, 12000, 0.2);
  CheckEquivalence(*db, rng, 20, 64);
}

TEST(MultiSeekTest, MatchesSeekAfterCompactionAndReopen) {
  auto options = SmallDbOptions("reopen");
  options.filter_policy = MakeProteusIntPolicy(14.0);
  {
    auto [db, st] = Db::Create(options);
    ASSERT_TRUE(st.ok());
    Rng rng(23);
    FillRandom(*db, rng, 12000, 0.25);
    ASSERT_TRUE(db->CompactAll().ok());
    CheckEquivalence(*db, rng, 10, 64);
  }
  auto [db, status] = Db::Open(options);
  ASSERT_TRUE(status.ok()) << status.ToString();
  Rng rng(24);
  CheckEquivalence(*db, rng, 10, 64);
}

TEST(MultiSeekTest, MatchesSeekAgainstReferenceMap) {
  // Differential check with a model map, so MultiSeek is validated
  // against ground truth and not just against Seek.
  auto options = SmallDbOptions("refmap");
  options.filter_policy = MakeProteusIntPolicy(12.0);
  auto [db, st] = Db::Create(options);
  ASSERT_TRUE(st.ok());
  std::map<std::string, std::string> ref;
  Rng rng(25);
  for (int op = 0; op < 12000; ++op) {
    uint64_t k = rng.NextBelow(4000) * 1000;
    std::string key = EncodeKeyBE(k);
    if (rng.NextBelow(10) < 2) {
      ASSERT_TRUE(db->Delete(key).ok());
      ref.erase(key);
    } else {
      std::string value = "v" + std::to_string(op) + std::string(40, 'm');
      ASSERT_TRUE(db->Put(key, value).ok());
      ref[key] = value;
    }
  }
  auto scheduler = SchedulerRegistry::Global().Create("sorted");
  for (int round = 0; round < 20; ++round) {
    QueryBatch batch = RandomBatch(rng, 64);
    std::vector<MultiSeekResult> results;
    db->MultiSeek(batch, *scheduler, &results);
    for (size_t i = 0; i < batch.size(); ++i) {
      auto it = ref.lower_bound(batch[i].lo);
      bool ref_found = it != ref.end() && it->first <= batch[i].hi;
      ASSERT_EQ(results[i].found, ref_found) << "query " << i;
      if (ref_found) {
        ASSERT_EQ(results[i].key, it->first);
        ASSERT_EQ(results[i].value, it->second);
      }
    }
  }
}

TEST(MultiSeekTest, EmptyAndSingletonBatches) {
  auto [db, st] = Db::Create(SmallDbOptions("edge"));
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(db->Put(EncodeKeyBE(100), "x").ok());
  auto scheduler = SchedulerRegistry::Global().Create("sorted");
  std::vector<MultiSeekResult> results;
  db->MultiSeek({}, *scheduler, &results);
  EXPECT_TRUE(results.empty());
  db->MultiSeek({{EncodeKeyBE(50), EncodeKeyBE(150)}}, *scheduler, &results);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].found);
  EXPECT_EQ(results[0].key, EncodeKeyBE(100));
  EXPECT_EQ(results[0].value, "x");
}

// --- sample-queue feed + stats ---

TEST(MultiSeekTest, EmptyQueriesFeedTheSampleQueue) {
  auto options = SmallDbOptions("queue");
  options.queue_options.sample_rate = 10;
  auto [db, st] = Db::Create(options);
  ASSERT_TRUE(st.ok());
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(db->Put(EncodeKeyBE(k * 1000000), "v").ok());
  }
  auto scheduler = SchedulerRegistry::Global().Create("sorted");
  QueryBatch batch;
  for (uint64_t i = 0; i < 100; ++i) {
    // Between keys: all empty.
    batch.push_back({EncodeKeyBE(i * 1000000 + 10), EncodeKeyBE(i * 1000000 + 20)});
  }
  std::vector<MultiSeekResult> results;
  db->MultiSeek(batch, *scheduler, &results);
  for (const auto& r : results) ASSERT_FALSE(r.found);
  const DbStats s = db->stats();
  EXPECT_EQ(s.seeks, 100u);
  EXPECT_EQ(s.empty_seeks, 100u);
  // sample_rate=10: every 10th empty query lands in the queue.
  EXPECT_EQ(s.queue_sampled, 10u);
  EXPECT_EQ(db->SampledQueries().size(), 10u);
  EXPECT_EQ(db->query_queue().seen(), 100u);
}

TEST(QueryEngineTest, ReportsBatchStats) {
  auto options = SmallDbOptions("stats");
  options.filter_policy = MakeProteusIntPolicy(14.0);
  auto [db, st] = Db::Create(options);
  ASSERT_TRUE(st.ok());
  Rng rng(26);
  for (int op = 0; op < 6000; ++op) {
    uint64_t k = rng.NextBelow(4000) * 1000;
    ASSERT_TRUE(
        db->Put(EncodeKeyBE(k), "v" + std::string(60, 's')).ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());

  Status status;
  auto engine = QueryEngine::Create(db.get(), "grouped", &status);
  ASSERT_NE(engine, nullptr) << status.ToString();
  EXPECT_EQ(engine->scheduler().Name(), "grouped");

  QueryBatch batch = RandomBatch(rng, 128);
  std::vector<MultiSeekResult> results;
  BatchStats stats;
  engine->Run(batch, &results, &stats);
  EXPECT_EQ(stats.queries, batch.size());
  uint64_t found = 0;
  for (const auto& r : results) found += r.found;
  EXPECT_EQ(stats.found, found);
  EXPECT_EQ(stats.empty, batch.size() - found);
  EXPECT_GT(stats.wall_ns, 0u);
  EXPECT_GT(stats.filter_checks, 0u);
  EXPECT_GT(stats.Qps(), 0.0);
  EXPECT_EQ(engine->totals().queries, batch.size());

  engine->Run(batch, &results);
  EXPECT_EQ(engine->totals().queries, 2 * batch.size());

  // Bad spec surfaces as InvalidArgument, not a crash.
  auto bad = QueryEngine::Create(db.get(), "warp-speed", &status);
  EXPECT_EQ(bad, nullptr);
  EXPECT_FALSE(status.ok());
}

TEST(DbStatsTest, ObservedFileFprCountsFalsePositives) {
  DbStats s;
  EXPECT_EQ(s.ObservedFileFpr(), 0.0);
  s.sst_seeks = 8;
  s.false_positive_files = 2;
  EXPECT_DOUBLE_EQ(s.ObservedFileFpr(), 0.25);
}

}  // namespace
}  // namespace proteus
