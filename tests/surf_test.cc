// Tests for the SuRF baseline.
//
// For fixed-length integer keys the filter's conservative semantics have an
// exact executable specification: every pruned leaf covers the key interval
// [prefix·00…, prefix·FF…] (narrowed by real-suffix bits), and
// MayContain(lo, hi) must hold iff some leaf interval intersects [lo, hi].
// We verify the full navigation logic against that spec on randomized key
// sets, plus hand-built cases for variable-length strings (terminators,
// prefix keys, suffix disambiguation).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "surf/surf.h"
#include "util/bits.h"
#include "util/random.h"
#include "workload/datasets.h"

namespace proteus {
namespace {

std::vector<uint64_t> RandomSortedKeys(size_t n, uint64_t seed,
                                       uint64_t span = ~uint64_t{0}) {
  Rng rng(seed);
  std::set<uint64_t> s;
  while (s.size() < n) s.insert(span == ~uint64_t{0} ? rng.Next()
                                                     : rng.NextBelow(span));
  return {s.begin(), s.end()};
}

// Reference spec: leaf intervals for integer keys under SuRF pruning.
std::vector<std::pair<uint64_t, uint64_t>> LeafIntervals(
    const std::vector<uint64_t>& keys, uint32_t real_suffix_bits) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  const size_t n = keys.size();
  auto byte_lcp = [](uint64_t a, uint64_t b) {
    uint32_t bits = LcpBits64(a, b);
    return bits / 8;  // whole shared bytes
  };
  for (size_t i = 0; i < n; ++i) {
    size_t l1 = i > 0 ? byte_lcp(keys[i - 1], keys[i]) : 0;
    size_t l2 = i + 1 < n ? byte_lcp(keys[i], keys[i + 1]) : 0;
    size_t prune_bytes = std::min<size_t>(std::max(l1, l2) + 1, 8);
    uint32_t known = static_cast<uint32_t>(
        std::min<uint64_t>(prune_bytes * 8 + real_suffix_bits, 64));
    uint64_t mask = known == 64 ? ~uint64_t{0} : ~(~uint64_t{0} >> known);
    uint64_t lo = keys[i] & mask;
    uint64_t hi = lo | ~mask;
    out.push_back({lo, hi});
  }
  return out;
}

bool SpecMayContain(const std::vector<std::pair<uint64_t, uint64_t>>& leaves,
                    uint64_t lo, uint64_t hi) {
  for (const auto& [a, b] : leaves) {
    if (a <= hi && b >= lo) return true;
  }
  return false;
}

class SurfSpecTest
    : public ::testing::TestWithParam<std::tuple<Dataset, uint32_t>> {};

TEST_P(SurfSpecTest, MatchesIntervalSpec) {
  auto [dataset, suffix_bits] = GetParam();
  auto keys = GenerateKeys(dataset, 600, 51);
  Surf::Options options;
  options.suffix_mode =
      suffix_bits == 0 ? SurfSuffixMode::kNone : SurfSuffixMode::kReal;
  options.suffix_bits = suffix_bits;
  auto filter = SurfIntFilter::Build(keys, options);
  auto leaves = LeafIntervals(keys, suffix_bits);

  Rng rng(suffix_bits * 7 + 3);
  for (int i = 0; i < 4000; ++i) {
    uint64_t a, b;
    switch (rng.NextBelow(3)) {
      case 0:  // uniform ranges
        a = rng.Next();
        b = a + rng.NextBelow(uint64_t{1} << 40);
        break;
      case 1: {  // near-key ranges (exercise suffix disambiguation)
        uint64_t k = keys[rng.NextBelow(keys.size())];
        int64_t d = static_cast<int64_t>(rng.NextBelow(1 << 12)) - (1 << 11);
        a = k + static_cast<uint64_t>(d);
        b = a + rng.NextBelow(1 << 10);
        break;
      }
      default:  // point queries
        a = rng.NextBelow(2) ? rng.Next() : keys[rng.NextBelow(keys.size())];
        b = a;
    }
    if (b < a) continue;
    ASSERT_EQ(filter->MayContain(a, b), SpecMayContain(leaves, a, b))
        << DatasetName(dataset) << " r=" << suffix_bits << " [" << a << ","
        << b << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SurfSpecTest,
    ::testing::Combine(::testing::Values(Dataset::kUniform, Dataset::kNormal,
                                         Dataset::kFacebook),
                       ::testing::Values(0u, 2u, 4u, 8u)),
    [](const auto& info) {
      return std::string(DatasetName(std::get<0>(info.param))) + "_r" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Surf, NoFalseNegativesPointLookups) {
  auto keys = GenerateKeys(Dataset::kUniform, 3000, 52);
  for (auto mode : {SurfSuffixMode::kNone, SurfSuffixMode::kReal,
                    SurfSuffixMode::kHash}) {
    Surf::Options options;
    options.suffix_mode = mode;
    options.suffix_bits = mode == SurfSuffixMode::kNone ? 0 : 8;
    auto filter = SurfIntFilter::Build(keys, options);
    for (uint64_t k : keys) {
      ASSERT_TRUE(filter->MayContain(k, k)) << filter->Name();
    }
  }
}

TEST(Surf, HashSuffixCutsPointFpr) {
  auto keys = GenerateKeys(Dataset::kUniform, 20000, 53);
  Surf::Options base;
  auto f_base = SurfIntFilter::Build(keys, base);
  Surf::Options hash;
  hash.suffix_mode = SurfSuffixMode::kHash;
  hash.suffix_bits = 8;
  auto f_hash = SurfIntFilter::Build(keys, hash);

  Rng rng(54);
  int fp_base = 0, fp_hash = 0, probes = 20000;
  for (int i = 0; i < probes; ++i) {
    // Points adjacent to keys: adversarial for SuRF-Base.
    uint64_t q = keys[rng.NextBelow(keys.size())] + 1 + rng.NextBelow(16);
    if (std::binary_search(keys.begin(), keys.end(), q)) continue;
    fp_base += f_base->MayContain(q, q);
    fp_hash += f_hash->MayContain(q, q);
  }
  EXPECT_LT(fp_hash, fp_base / 10)
      << "hash suffixes should cut adversarial point FPR ~256x";
}

TEST(Surf, RealSuffixHelpsRangesHashDoesNot) {
  // Dense key band (span 2^32): pruned prefixes reach ~6 bytes, so 8 real
  // suffix bits cover the bits where a key+2^10..2^12 query diverges from
  // its nearest key. Hash suffixes cannot be used for ranges (Section 2.2),
  // so their range FPR stays at SuRF-Base levels.
  auto keys = RandomSortedKeys(20000, 55, uint64_t{1} << 32);
  Surf::Options real;
  real.suffix_mode = SurfSuffixMode::kReal;
  real.suffix_bits = 8;
  auto f_real = SurfIntFilter::Build(keys, real);
  Surf::Options hash;
  hash.suffix_mode = SurfSuffixMode::kHash;
  hash.suffix_bits = 8;
  auto f_hash = SurfIntFilter::Build(keys, hash);

  Rng rng(56);
  int fp_real = 0, fp_hash = 0, total = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t q = keys[rng.NextBelow(keys.size())] +
                 (uint64_t{1} << 10) + rng.NextBelow(1 << 12);
    uint64_t hi = q + 4;
    auto it = std::lower_bound(keys.begin(), keys.end(), q);
    if (it != keys.end() && *it <= hi) continue;  // non-empty
    ++total;
    fp_real += f_real->MayContain(q, hi);
    fp_hash += f_hash->MayContain(q, hi);
  }
  ASSERT_GT(total, 1000);
  EXPECT_LT(fp_real * 2, fp_hash)
      << "real=" << fp_real << " hash=" << fp_hash << " total=" << total;
}

TEST(Surf, SizeIsCompact) {
  // SuRF-Base on random 64-bit integers lands around 10-14 bits per key
  // (Section 5.2 observes an 11-12 BPK minimum).
  auto keys = GenerateKeys(Dataset::kUniform, 50000, 57);
  auto filter = SurfIntFilter::Build(keys, Surf::Options{});
  double bpk = filter->Bpk(keys.size());
  EXPECT_GT(bpk, 6.0) << bpk;
  EXPECT_LT(bpk, 16.0) << bpk;
}

TEST(Surf, DenseRatioControlsEncoding) {
  auto keys = GenerateKeys(Dataset::kUniform, 20000, 58);
  Surf::Options all_sparse;
  all_sparse.dense_ratio = 0;  // dense never wins
  auto f_sparse = SurfIntFilter::Build(keys, all_sparse);
  EXPECT_EQ(f_sparse->surf().n_dense_nodes(), 0u);
  Surf::Options some_dense;
  some_dense.dense_ratio = 64;
  auto f_dense = SurfIntFilter::Build(keys, some_dense);
  EXPECT_GT(f_dense->surf().n_dense_nodes(), 0u);
  // Both encodings answer identically.
  Rng rng(59);
  for (int i = 0; i < 3000; ++i) {
    uint64_t a = rng.Next();
    uint64_t b = a + rng.NextBelow(1 << 20);
    if (b < a) continue;
    ASSERT_EQ(f_sparse->MayContain(a, b), f_dense->MayContain(a, b));
  }
}

// ---------------------------------------------------------------------------
// Variable-length string keys
// ---------------------------------------------------------------------------

TEST(SurfStr, PrefixKeysAndTerminators) {
  std::vector<std::string> keys = {"a", "ab", "abc", "abd", "b", "ba"};
  std::sort(keys.begin(), keys.end());
  auto filter = SurfStrFilter::Build(keys, Surf::Options{});
  for (const auto& k : keys) {
    EXPECT_TRUE(filter->MayContain(k, k)) << k;
  }
  EXPECT_TRUE(filter->surf().Lookup("ab"));
  EXPECT_TRUE(filter->MayContain("aa", "ab"));   // contains "ab"
  EXPECT_TRUE(filter->MayContain("abb", "abz")); // contains "abc", "abd"
  EXPECT_FALSE(filter->MayContain("c", "z"));    // nothing beyond "ba"
}

TEST(SurfStr, RangeSemanticsOnWords) {
  std::vector<std::string> keys = {"apple", "apricot", "banana",
                                   "cherry", "damson", "fig"};
  std::sort(keys.begin(), keys.end());
  Surf::Options options;
  options.suffix_mode = SurfSuffixMode::kReal;
  options.suffix_bits = 8;
  auto filter = SurfStrFilter::Build(keys, options);
  for (const auto& k : keys) EXPECT_TRUE(filter->MayContain(k, k)) << k;
  EXPECT_TRUE(filter->MayContain("az", "bz"));   // banana inside
  EXPECT_FALSE(filter->MayContain("g", "zzz"));  // beyond all keys
  EXPECT_FALSE(filter->MayContain("A", "Z"));    // before all keys
  // Queries adjacent to a pruned region: conservative positives allowed,
  // but a range clearly between "banana" and "cherry" prefixes should be
  // negative with real suffixes.
  EXPECT_FALSE(filter->MayContain("bx", "by"));
}

TEST(SurfStr, LongSharedPrefixes) {
  std::vector<std::string> keys;
  for (int i = 0; i < 200; ++i) {
    keys.push_back("www.site" + std::to_string(1000 + i) + ".org");
  }
  std::sort(keys.begin(), keys.end());
  auto filter = SurfStrFilter::Build(keys, Surf::Options{});
  for (const auto& k : keys) EXPECT_TRUE(filter->MayContain(k, k));
  EXPECT_FALSE(filter->MayContain("www.zzz", "www.zzzz"));
}

TEST(SurfStr, EmptyFilter) {
  Surf surf;
  surf.Build({}, Surf::Options{});
  EXPECT_FALSE(surf.MayContain("a", "b"));
  EXPECT_FALSE(surf.Lookup("a"));
}

TEST(SurfStr, SingleKey) {
  Surf surf;
  surf.Build({"hello"}, Surf::Options{});
  EXPECT_TRUE(surf.MayContain("hello", "hello"));
  EXPECT_TRUE(surf.MayContain("h", "i"));  // pruned to 1 byte: whole 'h' range
  EXPECT_FALSE(surf.MayContain("i", "z"));
}

TEST(SurfStr, RandomizedNoFalseNegatives) {
  Rng rng(60);
  std::set<std::string> key_set;
  while (key_set.size() < 800) {
    size_t len = 1 + rng.NextBelow(10);
    std::string s;
    for (size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>('a' + rng.NextBelow(5)));
    }
    key_set.insert(std::move(s));
  }
  std::vector<std::string> keys(key_set.begin(), key_set.end());
  for (auto mode : {SurfSuffixMode::kNone, SurfSuffixMode::kReal,
                    SurfSuffixMode::kHash}) {
    Surf::Options options;
    options.suffix_mode = mode;
    options.suffix_bits = mode == SurfSuffixMode::kNone ? 0 : 6;
    auto filter = SurfStrFilter::Build(keys, options);
    for (const auto& k : keys) {
      ASSERT_TRUE(filter->MayContain(k, k)) << k;
    }
    // Ranges straddling consecutive keys must be positive.
    for (size_t i = 0; i + 1 < keys.size(); i += 13) {
      ASSERT_TRUE(filter->MayContain(keys[i], keys[i + 1]));
    }
  }
}

TEST(Surf, EncodeDecodeKeyBE) {
  for (uint64_t k : {0ull, 1ull, 0xFFull << 56, ~0ull, 0x0123456789ABCDEFull}) {
    EXPECT_EQ(DecodeKeyBE(EncodeKeyBE(k)), k);
  }
  // Order preservation.
  EXPECT_LT(EncodeKeyBE(5), EncodeKeyBE(uint64_t{1} << 40));
}

}  // namespace
}  // namespace proteus
