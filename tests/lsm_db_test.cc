// Integration tests for the miniLSM engine: differential testing against
// std::map across randomized put/seek/flush/compaction schedules, filter
// integration, compaction shape, and workload-adaptive filter rebuilds.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "lsm/db.h"
#include "surf/surf.h"
#include "util/random.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace proteus {
namespace {

DbOptions SmallDbOptions(const std::string& name) {
  DbOptions options;
  options.dir = "/tmp/proteus_db_test_" + name;
  options.memtable_bytes = 64 << 10;
  options.sst_target_bytes = 128 << 10;
  options.block_size = 1024;
  options.block_cache_bytes = 1 << 20;
  options.l0_compaction_trigger = 3;
  options.l1_size_bytes = 256 << 10;
  options.level_size_multiplier = 4.0;
  options.compress_min_level = 2;
  return options;
}

TEST(DbTest, DifferentialAgainstMap) {
  auto [db, st] = Db::Create(SmallDbOptions("diff"));
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::map<std::string, std::string> ref;
  Rng rng(11);
  for (int op = 0; op < 30000; ++op) {
    uint64_t k = rng.NextBelow(5000) * 1000;
    std::string key = EncodeKeyBE(k);
    if (rng.NextBelow(100) < 70) {
      // Values are padded so the workload spans many flushes/compactions.
      std::string value = "v" + std::to_string(op) + std::string(120, 'p');
      ASSERT_TRUE(db->Put(key, value).ok());
      ref[key] = value;
    } else {
      uint64_t span = rng.NextBelow(10000);
      std::string lo = EncodeKeyBE(k > span ? k - span : 0);
      std::string hi = EncodeKeyBE(k + span);
      SeekResult r = db->Seek(lo, hi);
      ASSERT_TRUE(r.status.ok()) << "op " << op << ": " << r.status.ToString();
      auto it = ref.lower_bound(lo);
      bool ref_found = it != ref.end() && it->first <= hi;
      ASSERT_EQ(r.found, ref_found) << "op " << op;
      if (r.found) {
        ASSERT_EQ(r.key, it->first) << "op " << op;
        ASSERT_EQ(r.value, it->second) << "op " << op;
      }
    }
  }
  db->WaitForBackground();
  EXPECT_GT(db->stats().flushes, 5u);
  EXPECT_GT(db->stats().compactions, 0u);
}

TEST(DbTest, OverwritesReturnNewestValue) {
  auto [db, st] = Db::Create(SmallDbOptions("overwrite"));
  ASSERT_TRUE(st.ok());
  std::string key = EncodeKeyBE(42);
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(db->Put(key, "round" + std::to_string(round)).ok());
    ASSERT_TRUE(db->Flush().ok());  // spread versions across many SSTs
  }
  SeekResult r = db->Seek(key, key);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.value, "round9");
  ASSERT_TRUE(db->CompactAll().ok());
  r = db->Seek(key, key);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.value, "round9");
}

TEST(DbTest, CompactionShapesLevels) {
  auto [db, st] = Db::Create(SmallDbOptions("levels"));
  ASSERT_TRUE(st.ok());
  Rng rng(12);
  std::string value(256, 'x');
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(db->Put(EncodeKeyBE(rng.Next()), value).ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());
  auto counts = db->LevelFileCounts();
  EXPECT_EQ(counts[0], 0u);  // CompactAll drains L0
  EXPECT_GT(counts[1] + counts[2] + counts[3], 0u);
  // Non-overlapping invariant within levels >= 1 is exercised implicitly:
  // differential seeks above would fail if broken. Sanity-check sizes.
  for (size_t level = 1; level < counts.size(); ++level) {
    if (counts[level] == 0) continue;
    EXPECT_GT(db->TotalSstBytes(), 0u);
  }
}

TEST(DbTest, FiltersCutSstProbes) {
  // Same workload with and without Proteus filters: the filtered DB must
  // probe far fewer SSTs on empty seeks.
  auto keys = GenerateKeys(Dataset::kUniform, 20000, 13);
  QuerySpec spec;
  spec.dist = QueryDist::kUniform;
  spec.range_max = uint64_t{1} << 8;
  auto queries = GenerateQueries(keys, spec, 3000, 14);

  auto run = [&](std::shared_ptr<FilterPolicy> policy, const char* name) {
    auto options = SmallDbOptions(std::string("probes_") + name);
    options.filter_policy = std::move(policy);
    auto [db, st] = Db::Create(options);
    EXPECT_TRUE(st.ok());
    // Seed the queue so flush-time filters know the workload.
    std::vector<std::pair<std::string, std::string>> seed;
    for (size_t i = 0; i < 500; ++i) {
      seed.push_back({EncodeKeyBE(queries[i].lo), EncodeKeyBE(queries[i].hi)});
    }
    db->query_queue().Seed(seed);
    std::string value(64, 'v');
    for (uint64_t k : keys) EXPECT_TRUE(db->Put(EncodeKeyBE(k), value).ok());
    EXPECT_TRUE(db->CompactAll().ok());
    db->ResetStats();
    for (const auto& q : queries) {
      SeekResult r = db->Seek(EncodeKeyBE(q.lo), EncodeKeyBE(q.hi));
      EXPECT_FALSE(r.found);  // queries are empty by construction
    }
    return db->stats();
  };

  DbStats no_filter = run(nullptr, "none");
  DbStats with_filter = run(MakeProteusIntPolicy(14.0), "proteus");
  EXPECT_EQ(no_filter.sst_seeks, no_filter.filter_checks);
  EXPECT_LT(with_filter.sst_seeks, no_filter.sst_seeks / 5)
      << "filtered=" << with_filter.sst_seeks
      << " unfiltered=" << no_filter.sst_seeks;
}

TEST(DbTest, NoFalseNegativesThroughFilters) {
  // Seeks for present keys must always find them, whatever the policy.
  auto keys = GenerateKeys(Dataset::kNormal, 5000, 15);
  for (auto make : {+[]() { return MakeProteusIntPolicy(12.0); },
                    +[]() { return MakeSurfIntPolicy(1, 4); },
                    +[]() { return MakeRosettaIntPolicy(12.0); },
                    +[]() { return MakeBloomFilterPolicy(12.0); }}) {
    auto options = SmallDbOptions("nofn");
    options.filter_policy = make();
    auto [db, st] = Db::Create(options);
    ASSERT_TRUE(st.ok());
    std::string value(32, 'v');
    for (uint64_t k : keys) ASSERT_TRUE(db->Put(EncodeKeyBE(k), value).ok());
    ASSERT_TRUE(db->CompactAll().ok());
    Rng rng(16);
    for (int i = 0; i < 1500; ++i) {
      uint64_t k = keys[rng.NextBelow(keys.size())];
      SeekResult r = db->Seek(EncodeKeyBE(k), EncodeKeyBE(k));
      ASSERT_TRUE(r.found) << "policy lost key " << k;
      ASSERT_EQ(r.key, EncodeKeyBE(k));
    }
  }
}

TEST(DbTest, QueryQueueFeedsFilterConstruction) {
  auto options = SmallDbOptions("queue");
  options.filter_policy = MakeProteusIntPolicy(12.0);
  options.queue_options.sample_rate = 1;  // record every empty query
  auto [db, st] = Db::Create(options);
  ASSERT_TRUE(st.ok());
  auto keys = GenerateKeys(Dataset::kUniform, 3000, 17);
  std::string value(32, 'v');
  for (uint64_t k : keys) ASSERT_TRUE(db->Put(EncodeKeyBE(k), value).ok());
  QuerySpec spec;
  spec.dist = QueryDist::kCorrelated;
  spec.range_max = uint64_t{1} << 4;
  spec.corr_degree = uint64_t{1} << 8;
  auto queries = GenerateQueries(keys, spec, 2000, 18);
  for (const auto& q : queries) {
    db->Seek(EncodeKeyBE(q.lo), EncodeKeyBE(q.hi));
  }
  EXPECT_GT(db->query_queue().size(), 1000u);
  // A flush now builds filters from the recorded workload.
  ASSERT_TRUE(db->Put(EncodeKeyBE(keys[0]), value).ok());
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_GT(db->stats().filter_bits_built, 0u);
}

TEST(DbTest, BlockCacheServesRepeatedReads) {
  auto [db, st] = Db::Create(SmallDbOptions("cache"));
  ASSERT_TRUE(st.ok());
  std::string value(128, 'v');
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(db->Put(EncodeKeyBE(i * 3), value).ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());
  db->cache().ResetStats();
  for (int round = 0; round < 3; ++round) {
    for (uint64_t i = 0; i < 200; ++i) {
      db->Seek(EncodeKeyBE(i * 3), EncodeKeyBE(i * 3));
    }
  }
  const auto& stats = db->cache().stats();
  EXPECT_GT(stats.hits, stats.misses)
      << "hits=" << stats.hits << " misses=" << stats.misses;
}

TEST(DbTest, EmptySeekRecordsQueue) {
  auto options = SmallDbOptions("record");
  options.queue_options.sample_rate = 1;
  auto [db, st] = Db::Create(options);
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(db->Put(EncodeKeyBE(100), "v").ok());
  ASSERT_TRUE(db->Flush().ok());
  for (uint64_t i = 0; i < 50; ++i) {
    EXPECT_FALSE(
        db->Seek(EncodeKeyBE(200 + i * 10), EncodeKeyBE(205 + i * 10)).found);
  }
  EXPECT_EQ(db->query_queue().size(), 50u);
  EXPECT_EQ(db->stats().empty_seeks, 50u);
}

}  // namespace
}  // namespace proteus
