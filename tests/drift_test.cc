// Unit tests for the two pure-model halves of adaptive self-design:
// the drift detector's documented thresholds (src/lsm/drift.h) and the
// Monkey bpk allocator's budget conservation (src/model/bpk_alloc.h).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lsm/drift.h"
#include "model/bpk_alloc.h"

namespace proteus {
namespace {

// ---------------------------------------------------------------------------
// ObservedFpr: false positives over empty-range checks.
// ---------------------------------------------------------------------------

TEST(ObservedFprTest, ConditionsOnEmptyChecks) {
  DriftSignal s;
  s.checks = 1000;
  s.probes = 500;          // 400 true positives, 100 false positives
  s.false_positives = 100;
  // Empty-range checks = 1000 - 400 = 600; 100 of them passed.
  EXPECT_DOUBLE_EQ(ObservedFpr(s), 100.0 / 600.0);
}

TEST(ObservedFprTest, AllEmptyWorkloadIsNotAutomaticallyOne) {
  // Every query empty, filter rejects most: probes == false_positives,
  // but the rate is fp / checks — a good filter scores low even though
  // every probe it let through was by definition a false positive.
  DriftSignal s;
  s.checks = 10000;
  s.probes = 50;
  s.false_positives = 50;
  EXPECT_DOUBLE_EQ(ObservedFpr(s), 50.0 / 10000.0);
}

TEST(ObservedFprTest, NoEmptyChecksIsZero) {
  DriftSignal s;
  s.checks = 100;
  s.probes = 100;  // every check found a key: no empty-range evidence
  s.false_positives = 0;
  EXPECT_DOUBLE_EQ(ObservedFpr(s), 0.0);
  EXPECT_DOUBLE_EQ(ObservedFpr(DriftSignal{}), 0.0);  // no traffic at all
}

// ---------------------------------------------------------------------------
// DetectDrift: synthetic counters through the documented thresholds.
// Defaults: fpr_factor 4, fpr_floor 0.01, min_probes 256,
// signature_bits 8, min_window_samples 64.
// ---------------------------------------------------------------------------

DriftSignal CalmSignal() {
  // A file living its modeled life: FPR at the promise, window unmoved.
  DriftSignal s;
  s.checks = 100000;
  s.probes = 2000;
  s.false_positives = 2000;  // 0.02 observed on all-empty traffic
  s.modeled_fpr = 0.02;
  s.design_signature = 40.0;
  s.live_signature = 40.0;
  s.window_samples = 1000;
  return s;
}

TEST(DetectDriftTest, CalmFileIsNotFlagged) {
  EXPECT_EQ(DetectDrift(CalmSignal(), DriftOptions{}), DriftReason::kNone);
}

TEST(DetectDriftTest, MinProbesGatesEverything) {
  DriftOptions o;
  DriftSignal s = CalmSignal();
  s.false_positives = s.probes;   // blown-out FPR...
  s.checks = s.probes;            // ...of exactly 1.0
  s.live_signature = 0.0;         // and a shifted window
  s.probes = o.min_probes - 1;
  s.false_positives = s.probes;
  s.checks = s.probes;
  EXPECT_EQ(DetectDrift(s, o), DriftReason::kNone);
  s.probes = o.min_probes;  // one more probe arms both triggers
  s.false_positives = s.probes;
  s.checks = s.probes;
  EXPECT_EQ(DetectDrift(s, o), DriftReason::kSignatureShift);
}

TEST(DetectDriftTest, FprTriggerIsStrictlyAboveFactorTimesModeled) {
  DriftOptions o;
  DriftSignal s = CalmSignal();
  // Observed = fp / checks (all-empty traffic). Modeled 0.02 -> the
  // trigger line is exactly 0.08.
  s.checks = 100000;
  s.false_positives = 8000;
  s.probes = 8000;
  EXPECT_EQ(DetectDrift(s, o), DriftReason::kNone);  // == factor * modeled
  s.false_positives = 8001;
  s.probes = 8001;
  EXPECT_EQ(DetectDrift(s, o), DriftReason::kFprExceeded);
}

TEST(DetectDriftTest, FprFloorShieldsTightModels) {
  DriftOptions o;
  DriftSignal s = CalmSignal();
  s.modeled_fpr = 0.0001;  // promise far below the floor
  s.checks = 100000;
  s.false_positives = 3000;  // 0.03 observed: 300x the model...
  s.probes = 3000;
  // ...but only 3x the 0.01 floor, so no flag.
  EXPECT_EQ(DetectDrift(s, o), DriftReason::kNone);
  s.false_positives = 4100;  // 0.041 > 4 * 0.01
  s.probes = 4100;
  EXPECT_EQ(DetectDrift(s, o), DriftReason::kFprExceeded);
}

TEST(DetectDriftTest, NoModelMeansNoFprTrigger) {
  DriftSignal s = CalmSignal();
  s.modeled_fpr = -1.0;
  s.false_positives = s.probes;
  s.checks = s.probes;  // observed 1.0, nothing to compare against
  EXPECT_EQ(DetectDrift(s, DriftOptions{}), DriftReason::kNone);
}

TEST(DetectDriftTest, SignatureShiftNeedsWindowSamples) {
  DriftOptions o;
  DriftSignal s = CalmSignal();
  s.live_signature = s.design_signature + o.signature_bits;  // shifted
  s.window_samples = o.min_window_samples - 1;
  EXPECT_EQ(DetectDrift(s, o), DriftReason::kNone);
  s.window_samples = o.min_window_samples;
  EXPECT_EQ(DetectDrift(s, o), DriftReason::kSignatureShift);
  // Strictly inside the band: no shift.
  s.live_signature = s.design_signature + o.signature_bits - 0.5;
  EXPECT_EQ(DetectDrift(s, o), DriftReason::kNone);
}

TEST(DetectDriftTest, PreWindowDesignCountsAsShiftedOnceWindowExists) {
  DriftOptions o;
  DriftSignal s = CalmSignal();
  s.design_signature = -1.0;  // designed before any query was sampled
  s.live_signature = 40.0;
  EXPECT_EQ(DetectDrift(s, o), DriftReason::kSignatureShift);
  s.live_signature = -1.0;  // still no window: nothing to compare
  EXPECT_EQ(DetectDrift(s, o), DriftReason::kNone);
}

TEST(DetectDriftTest, SignatureCheckedBeforeFpr) {
  DriftOptions o;
  DriftSignal s = CalmSignal();
  s.false_positives = s.probes;
  s.checks = s.probes;  // FPR blowout...
  s.live_signature = s.design_signature + 2.0 * o.signature_bits;
  // ...but a shifted window wins the reason.
  EXPECT_EQ(DetectDrift(s, o), DriftReason::kSignatureShift);
}

// ---------------------------------------------------------------------------
// MonkeyBpkSplit: budget conservation across level shapes.
// ---------------------------------------------------------------------------

double TotalBits(const std::vector<LevelLoad>& levels,
                 const std::vector<double>& split) {
  double total = 0.0;
  for (size_t i = 0; i < levels.size(); ++i) {
    total += static_cast<double>(levels[i].keys) * split[i];
  }
  return total;
}

double TotalKeys(const std::vector<LevelLoad>& levels) {
  double total = 0.0;
  for (const auto& l : levels) total += static_cast<double>(l.keys);
  return total;
}

TEST(MonkeyBpkSplitTest, BudgetConservedAcrossShapes) {
  const double bpk = 14.0;
  const std::vector<std::vector<LevelLoad>> shapes = {
      {{1000, 1.0}},                                          // 1 level
      {{1000, 4.0}, {10000, 1.0}},                            // L0 + L1
      {{500, 3.0}, {4000, 1.0}, {16000, 1.0}},                // 3 levels
      {{100, 2.0}, {1000, 1.0}, {8000, 1.0}, {64000, 1.0}},   // 4 levels
      {{64, 6.0}, {512, 1.0}, {4096, 1.0}, {32768, 1.0}, {262144, 1.0}},
  };
  for (const auto& levels : shapes) {
    auto split = MonkeyBpkSplit(bpk, levels);
    ASSERT_EQ(split.size(), levels.size());
    EXPECT_NEAR(TotalBits(levels, split), bpk * TotalKeys(levels),
                1e-6 * bpk * TotalKeys(levels))
        << levels.size() << " levels";
    for (double b : split) EXPECT_GE(b, 1.0);
  }
}

TEST(MonkeyBpkSplitTest, EmptyLevelsHoldNoBudget) {
  const double bpk = 12.0;
  // Empty L0 and an empty middle level: both get the global default
  // back, and the budget is split over the non-empty levels only.
  std::vector<LevelLoad> levels = {
      {0, 4.0}, {2000, 1.0}, {0, 1.0}, {30000, 1.0}};
  auto split = MonkeyBpkSplit(bpk, levels);
  ASSERT_EQ(split.size(), 4u);
  EXPECT_DOUBLE_EQ(split[0], bpk);
  EXPECT_DOUBLE_EQ(split[2], bpk);
  EXPECT_NEAR(TotalBits(levels, split), bpk * TotalKeys(levels),
              1e-6 * bpk * TotalKeys(levels));
}

TEST(MonkeyBpkSplitTest, SmallProbedLevelsGetRicherFilters) {
  // The Monkey direction: with equal probe weight, bits migrate from
  // the huge last level (where a bit buys little FP reduction per probe)
  // to the small upper level.
  std::vector<LevelLoad> levels = {{1000, 1.0}, {100000, 1.0}};
  auto split = MonkeyBpkSplit(14.0, levels);
  EXPECT_GT(split[0], split[1]);
}

TEST(MonkeyBpkSplitTest, DegenerateInputsFallBackToGlobal) {
  std::vector<LevelLoad> all_empty = {{0, 1.0}, {0, 1.0}};
  for (double b : MonkeyBpkSplit(14.0, all_empty)) EXPECT_DOUBLE_EQ(b, 14.0);
  for (double b : MonkeyBpkSplit(0.0, {{1000, 1.0}})) EXPECT_DOUBLE_EQ(b, 0.0);
  EXPECT_TRUE(MonkeyBpkSplit(14.0, {}).empty());
}

}  // namespace
}  // namespace proteus
