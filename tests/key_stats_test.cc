// Tests for KeyStats and TrieMemoryModel: brute-force cross-checks of the
// prefix counts, and model-vs-measured trie sizes.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "model/key_stats.h"
#include "model/trie_memory.h"
#include "trie/bit_trie.h"
#include "util/bits.h"
#include "util/random.h"
#include "workload/datasets.h"

namespace proteus {
namespace {

std::vector<uint64_t> RandomSortedKeys(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::set<uint64_t> s;
  while (s.size() < n) s.insert(rng.Next());
  return {s.begin(), s.end()};
}

TEST(KeyStats, UniqueCountsMatchBruteForce) {
  auto keys = RandomSortedKeys(400, 11);
  KeyStats stats = KeyStats::FromSortedInts(keys);
  for (uint32_t l = 1; l <= 64; l += 5) {
    std::map<uint64_t, int> prefix_counts;
    for (uint64_t k : keys) prefix_counts[PrefixBits64(k, l)]++;
    uint64_t uniques = 0;
    for (auto& [p, c] : prefix_counts) {
      if (c == 1) ++uniques;
    }
    EXPECT_EQ(stats.unique_counts[l], uniques) << "l=" << l;
    EXPECT_EQ(stats.k_counts[l], prefix_counts.size()) << "l=" << l;
  }
}

TEST(KeyStats, SingleKey) {
  KeyStats stats = KeyStats::FromSortedInts({42});
  for (uint32_t l = 0; l <= 64; ++l) {
    EXPECT_EQ(stats.k_counts[l], 1u);
    EXPECT_EQ(stats.unique_counts[l], 1u);
  }
}

TEST(KeyStats, EmptyKeys) {
  KeyStats stats = KeyStats::FromSortedInts({});
  EXPECT_EQ(stats.n_keys, 0u);
  EXPECT_EQ(stats.k_counts[8], 0u);
}

TEST(KeyStats, StringsMatchIntSemantics) {
  auto keys = RandomSortedKeys(200, 12);
  std::vector<std::string> skeys;
  for (uint64_t k : keys) {
    std::string s(8, '\0');
    for (int i = 0; i < 8; ++i) s[i] = static_cast<char>(k >> (56 - 8 * i));
    skeys.push_back(std::move(s));
  }
  KeyStats si = KeyStats::FromSortedInts(keys);
  KeyStats ss = KeyStats::FromSortedStrings(skeys, 64);
  ASSERT_EQ(ss.n_keys, si.n_keys);
  for (uint32_t l = 0; l <= 64; ++l) {
    EXPECT_EQ(ss.k_counts[l], si.k_counts[l]) << l;
    EXPECT_EQ(ss.unique_counts[l], si.unique_counts[l]) << l;
  }
}

TEST(KeyStats, StringDuplicatesUnderPaddingCollapse) {
  std::vector<std::string> keys = {std::string("ab"), std::string("ab\0", 3),
                                   std::string("cd")};
  KeyStats stats = KeyStats::FromSortedStrings(keys, 32);
  EXPECT_EQ(stats.n_keys, 2u);
}

class TrieMemoryAccuracyTest
    : public ::testing::TestWithParam<std::tuple<Dataset, uint32_t>> {};

TEST_P(TrieMemoryAccuracyTest, ModelTracksMeasuredSize) {
  auto [dataset, depth] = GetParam();
  auto keys = GenerateKeys(dataset, 20000, 42);
  KeyStats stats = KeyStats::FromSortedInts(keys);
  TrieMemoryModel model(stats);
  BitTrie trie;
  trie.Build(UniquePrefixes(keys, depth), depth);
  uint64_t measured = trie.SizeBits();
  uint64_t modeled = model.TrieSizeBits(depth);
  // The model may overestimate (uniqueness computed against full keys,
  // Section 4.3) but must track the measured size closely enough to choose
  // sensible designs: within 25% + a small constant.
  EXPECT_GE(modeled + 4096, measured)
      << DatasetName(dataset) << " d=" << depth << " modeled=" << modeled
      << " measured=" << measured;
  EXPECT_LE(static_cast<double>(modeled),
            1.25 * static_cast<double>(measured) + 4096.0)
      << DatasetName(dataset) << " d=" << depth << " modeled=" << modeled
      << " measured=" << measured;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TrieMemoryAccuracyTest,
    ::testing::Combine(::testing::Values(Dataset::kUniform, Dataset::kNormal,
                                         Dataset::kBooks, Dataset::kFacebook),
                       ::testing::Values(8u, 16u, 24u, 32u, 48u, 64u)),
    [](const auto& info) {
      return std::string(DatasetName(std::get<0>(info.param))) + "_d" +
             std::to_string(std::get<1>(info.param));
    });

TEST(TrieMemoryModel, MonotoneInDepth) {
  auto keys = GenerateKeys(Dataset::kNormal, 5000, 7);
  TrieMemoryModel model(KeyStats::FromSortedInts(keys));
  for (uint32_t d = 1; d <= 64; ++d) {
    EXPECT_GE(model.TrieSizeBits(d), model.TrieSizeBits(d - 1)) << d;
  }
}

TEST(TrieMemoryModel, MaxFeasibleDepth) {
  auto keys = GenerateKeys(Dataset::kUniform, 5000, 8);
  TrieMemoryModel model(KeyStats::FromSortedInts(keys));
  uint32_t d = model.MaxFeasibleDepth(keys.size() * 10);
  EXPECT_GT(d, 0u);
  EXPECT_LE(model.TrieSizeBits(d), keys.size() * 10);
  if (d < 64) {
    EXPECT_GT(model.TrieSizeBits(d + 1), keys.size() * 10);
  }
  EXPECT_EQ(model.MaxFeasibleDepth(0), 0u);
}

}  // namespace
}  // namespace proteus
