// Tests for string-key Proteus (Section 7): no false negatives, padding
// semantics, model accuracy on the coarse grid, and self-design behavior
// across string workloads.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/filter_builder.h"
#include "core/proteus_str.h"
#include "model/cpfpr_str.h"
#include "surf/surf.h"
#include "util/random.h"
#include "workload/string_gen.h"

namespace proteus {
namespace {

TEST(StrAddDelta, BasicArithmetic) {
  std::string out;
  ASSERT_TRUE(StrAddDelta("ab", 4, 1, &out));
  EXPECT_EQ(out, std::string("ab\0\x01", 4));
  ASSERT_TRUE(StrAddDelta("ab", 4, 0x100, &out));
  EXPECT_EQ(out, std::string("ab\x01\x00", 4));
  // Carry through 0xFF.
  std::string key("a\xFF\xFF\xFF", 4);
  ASSERT_TRUE(StrAddDelta(key, 4, 1, &out));
  EXPECT_EQ(out, std::string("b\x00\x00\x00", 4));
  // Overflow.
  std::string max(4, '\xFF');
  EXPECT_FALSE(StrAddDelta(max, 4, 1, &out));
}

TEST(StrRangeIsEmptyTest, PaddingSemantics) {
  std::vector<std::string> keys = {"apple", "banana", "cherry"};
  // Range covering "banana" exactly (padded bounds).
  std::string lo("banana\0\0", 8);
  std::string hi("banana\0\1", 8);
  EXPECT_FALSE(StrRangeIsEmpty(keys, lo, hi));
  // Range strictly between keys.
  EXPECT_TRUE(StrRangeIsEmpty(keys, "ax", "az"));
  EXPECT_TRUE(StrRangeIsEmpty(keys, "d", "z"));
  EXPECT_FALSE(StrRangeIsEmpty(keys, "a", "z"));
}

TEST(StrKeys, GeneratorsSortedUniqueDeterministic) {
  for (StrDataset d :
       {StrDataset::kUniform, StrDataset::kNormal, StrDataset::kDomains}) {
    auto a = GenerateStrKeys(d, 2000, 25, 3);
    auto b = GenerateStrKeys(d, 2000, 25, 3);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    EXPECT_EQ(a.size(), 2000u);
  }
}

TEST(StrKeys, DomainShape) {
  auto domains = GenerateStrKeys(StrDataset::kDomains, 5000, 0, 4);
  size_t min_len = 1000, max_len = 0;
  std::vector<size_t> lengths;
  for (const auto& d : domains) {
    EXPECT_EQ(d.substr(d.size() - 4), ".org") << d;
    min_len = std::min(min_len, d.size());
    max_len = std::max(max_len, d.size());
    lengths.push_back(d.size());
  }
  EXPECT_GE(min_len, 5u);
  EXPECT_LE(max_len, 253u);
  std::sort(lengths.begin(), lengths.end());
  size_t median = lengths[lengths.size() / 2];
  EXPECT_GT(median, 15u);
  EXPECT_LT(median, 30u);
}

TEST(StrQueries, EmptyByConstruction) {
  auto keys = GenerateStrKeys(StrDataset::kUniform, 3000, 16, 5);
  for (StrQueryDist dist :
       {StrQueryDist::kUniform, StrQueryDist::kCorrelated,
        StrQueryDist::kSplit}) {
    StrQuerySpec spec;
    spec.dist = dist;
    spec.range_max = uint64_t{1} << 20;
    spec.corr_degree = uint64_t{1} << 16;
    auto queries = GenerateStrQueries(keys, spec, 500, 6);
    ASSERT_EQ(queries.size(), 500u);
    for (const auto& q : queries) {
      ASSERT_LE(q.lo, q.hi);
      ASSERT_TRUE(StrRangeIsEmpty(keys, q.lo, q.hi));
    }
  }
}

class StrProteusNoFnTest : public ::testing::TestWithParam<StrDataset> {};

TEST_P(StrProteusNoFnTest, NoFalseNegatives) {
  size_t key_bytes = 16;
  auto keys = GenerateStrKeys(GetParam(), 1500, key_bytes, 7);
  size_t max_bytes = 0;
  for (const auto& k : keys) max_bytes = std::max(max_bytes, k.size());
  uint32_t max_bits = static_cast<uint32_t>(max_bytes * 8);

  for (auto config : {ProteusStrFilter::Config{0, max_bits, max_bits},
                      ProteusStrFilter::Config{24, 64, max_bits},
                      ProteusStrFilter::Config{40, 0, max_bits},
                      ProteusStrFilter::Config{16, max_bits, max_bits}}) {
    auto filter = ProteusStrFilter::BuildWithConfig(keys, config, 14.0);
    Rng rng(8);
    for (int i = 0; i < 600; ++i) {
      const std::string& k = keys[rng.NextBelow(keys.size())];
      std::string padded(max_bytes, '\0');
      std::copy_n(k.data(), std::min(k.size(), max_bytes), padded.data());
      ASSERT_TRUE(filter->MayContain(padded, padded)) << filter->Name();
      // Window around the key.
      std::string hi;
      ASSERT_TRUE(StrAddDelta(k, max_bytes, 1000, &hi));
      ASSERT_TRUE(filter->MayContain(padded, hi)) << filter->Name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StrProteusNoFnTest,
                         ::testing::Values(StrDataset::kUniform,
                                           StrDataset::kNormal,
                                           StrDataset::kDomains),
                         [](const auto& info) {
                           switch (info.param) {
                             case StrDataset::kUniform: return "uniform";
                             case StrDataset::kNormal: return "normal";
                             case StrDataset::kDomains: return "domains";
                           }
                           return "?";
                         });

TEST(StrProteus, SelfDesignBeatsSurfOnCorrelated) {
  // The Figure 9 setting at small scale: Proteus picks a fine design for
  // correlated string queries; SuRF's pruned trie cannot.
  const size_t key_bytes = 25;  // 200-bit keys
  auto keys = GenerateStrKeys(StrDataset::kUniform, 6000, key_bytes, 9);
  uint32_t max_bits = key_bytes * 8;
  StrQuerySpec spec;
  spec.dist = StrQueryDist::kCorrelated;
  spec.range_max = uint64_t{1} << 12;
  spec.corr_degree = uint64_t{1} << 29;
  auto samples = GenerateStrQueries(keys, spec, 1000, 10);
  auto eval = GenerateStrQueries(keys, spec, 3000, 11);

  auto proteus = ProteusStrFilter::BuildSelfDesigned(keys, samples, 14.0,
                                                     max_bits);
  Surf::Options sopt;
  sopt.suffix_mode = SurfSuffixMode::kReal;
  sopt.suffix_bits = 8;
  auto surf = SurfStrFilter::Build(keys, sopt);

  int fp_proteus = 0, fp_surf = 0;
  for (const auto& q : eval) {
    fp_proteus += proteus->MayContain(q.lo, q.hi);
    fp_surf += surf->MayContain(q.lo, q.hi);
  }
  double fpr_proteus = static_cast<double>(fp_proteus) / eval.size();
  double fpr_surf = static_cast<double>(fp_surf) / eval.size();
  EXPECT_LT(fpr_proteus, fpr_surf)
      << "proteus=" << fpr_proteus << " surf=" << fpr_surf;
  EXPECT_LT(fpr_proteus, 0.5) << proteus->Name();
}

TEST(StrProteus, ModelAccuracyOnGrid) {
  const size_t key_bytes = 10;  // 80-bit keys
  auto keys = GenerateStrKeys(StrDataset::kUniform, 8000, key_bytes, 12);
  uint32_t max_bits = key_bytes * 8;
  StrQuerySpec spec;
  spec.dist = StrQueryDist::kUniform;
  spec.range_max = uint64_t{1} << 16;
  auto samples = GenerateStrQueries(keys, spec, 1500, 13);
  auto eval = GenerateStrQueries(keys, spec, 4000, 14);
  StrCpfprModel model(keys, samples, max_bits);
  uint64_t mem = static_cast<uint64_t>(14.0 * keys.size());
  for (uint32_t l2 : {40u, 56u, 64u, 72u, 80u}) {
    double expected = model.ProteusFpr(0, l2, mem);
    if (expected > 1.0) continue;
    auto filter = ProteusStrFilter::BuildWithConfig(
        keys, ProteusStrFilter::Config{0, l2, max_bits}, 14.0);
    int fp = 0;
    for (const auto& q : eval) fp += filter->MayContain(q.lo, q.hi);
    double observed = static_cast<double>(fp) / eval.size();
    EXPECT_NEAR(expected, observed, 0.06 + 0.3 * expected) << "l2=" << l2;
  }
}

TEST(StrProteus, DeepKeys1440Bits) {
  const size_t key_bytes = 180;  // the paper's 1440-bit keys
  auto keys = GenerateStrKeys(StrDataset::kNormal, 1200, key_bytes, 15);
  uint32_t max_bits = key_bytes * 8;
  StrQuerySpec spec;
  spec.dist = StrQueryDist::kSplit;
  spec.range_max = uint64_t{1} << 30;
  spec.corr_degree = uint64_t{1} << 29;
  spec.split_corr_range_max = uint64_t{1} << 10;
  auto samples = GenerateStrQueries(keys, spec, 400, 16);
  StrCpfprOptions grid;
  grid.bloom_grid = 64;
  grid.trie_grid = 32;
  auto filter = ProteusStrFilter::BuildSelfDesigned(keys, samples, 12.0,
                                                    max_bits, grid);
  // Sanity: respects budget and never false-negatives.
  EXPECT_LT(filter->Bpk(keys.size()), 12.0 * 1.3 + 1.0);
  Rng rng(17);
  for (int i = 0; i < 300; ++i) {
    const std::string& k = keys[rng.NextBelow(keys.size())];
    ASSERT_TRUE(filter->MayContain(k, k));
  }
}

TEST(StrProteus, BuilderCachesModelAcrossBuilds) {
  auto keys = GenerateStrKeys(StrDataset::kUniform, 2000, 16, 19);
  StrQuerySpec spec;
  spec.dist = StrQueryDist::kCorrelated;
  spec.range_max = uint64_t{1} << 16;
  auto samples = GenerateStrQueries(keys, spec, 600, 20);

  // The cached path (one model reused across a bpk sweep) must produce
  // byte-identical filters to per-build modeling.
  StrFilterBuilder cached(keys);
  cached.Sample(samples);
  for (const char* fspec : {"proteus-str:bpk=10", "proteus-str:bpk=14"}) {
    std::string error;
    auto from_cache = cached.Build(fspec, &error);
    ASSERT_NE(from_cache, nullptr) << error;
    StrFilterBuilder fresh(keys);
    fresh.Sample(samples);
    auto from_fresh = fresh.Build(fspec, &error);
    ASSERT_NE(from_fresh, nullptr) << error;
    std::string blob_cache, blob_fresh;
    from_cache->Serialize(&blob_cache);
    from_fresh->Serialize(&blob_fresh);
    EXPECT_EQ(blob_cache, blob_fresh) << fspec;
  }

  // Sample() invalidates: a build after new samples may not reuse the
  // stale model (observable as a changed design once the workload turns
  // from tiny to huge ranges — at minimum it must not crash or diverge
  // from a fresh builder seeing the same samples).
  StrQuerySpec wide;
  wide.dist = StrQueryDist::kUniform;
  wide.range_max = uint64_t{1} << 40;
  auto more = GenerateStrQueries(keys, wide, 600, 21);
  cached.Sample(more);
  StrFilterBuilder fresh(keys);
  fresh.Sample(samples);
  fresh.Sample(more);
  std::string error;
  auto a = cached.Build("proteus-str:bpk=12", &error);
  ASSERT_NE(a, nullptr) << error;
  auto b = fresh.Build("proteus-str:bpk=12", &error);
  ASSERT_NE(b, nullptr) << error;
  std::string blob_a, blob_b;
  a->Serialize(&blob_a);
  b->Serialize(&blob_b);
  EXPECT_EQ(blob_a, blob_b);
}

}  // namespace
}  // namespace proteus
