// Tests for MurmurHash3 and the CLHASH-style string hash: reference values,
// determinism, avalanche, and bucket uniformity (chi-squared smoke test).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "hash/clhash.h"
#include "hash/murmur3.h"
#include "util/bits.h"
#include "util/random.h"

namespace proteus {
namespace {

TEST(Murmur3, Fmix64KnownValues) {
  // fmix64 is bijective and fixes 0.
  EXPECT_EQ(Fmix64(0), 0u);
  EXPECT_NE(Fmix64(1), 1u);
  EXPECT_NE(Fmix64(1), Fmix64(2));
}

TEST(Murmur3, EmptyInputSeedZeroIsZero) {
  // Canonical MurmurHash3_x64_128 property: no blocks, no tail, and
  // fmix64(0) == 0, so the digest of ("", seed=0) is (0, 0).
  auto h = Murmur3X64_128("", 0, 0);
  EXPECT_EQ(h.first, 0u);
  EXPECT_EQ(h.second, 0u);
}

TEST(Murmur3, AlignmentIndependent) {
  // The digest must not depend on buffer alignment.
  std::string payload = "The quick brown fox jumps over the lazy dog";
  auto base = Murmur3X64_128(payload.data(), payload.size(), 7);
  for (int offset = 1; offset < 8; ++offset) {
    std::string shifted(offset, '#');
    shifted += payload;
    auto h = Murmur3X64_128(shifted.data() + offset, payload.size(), 7);
    EXPECT_EQ(h, base) << "offset " << offset;
  }
}

TEST(Murmur3, SeedChangesDigest) {
  std::string s = "proteus";
  EXPECT_NE(Murmur3Bytes64(s.data(), s.size(), 1),
            Murmur3Bytes64(s.data(), s.size(), 2));
}

TEST(Murmur3, AllTailLengths) {
  // Exercise every tail-switch arm: lengths 0..32.
  std::string base(32, 'x');
  std::vector<uint64_t> seen;
  for (size_t len = 0; len <= 32; ++len) {
    seen.push_back(Murmur3Bytes64(base.data(), len, 99));
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    for (size_t j = i + 1; j < seen.size(); ++j) {
      EXPECT_NE(seen[i], seen[j]) << i << " vs " << j;
    }
  }
}

TEST(ClHash, DeterministicAndSeeded) {
  std::string s = "www.example.org";
  EXPECT_EQ(ClHash64(s, 7), ClHash64(s, 7));
  EXPECT_NE(ClHash64(s, 7), ClHash64(s, 8));
}

TEST(ClHash, LengthSensitive) {
  // Keys that are prefixes of each other must hash differently (critical
  // for prefix Bloom filters on padded strings).
  std::string a = "abc";
  std::string b("abc\0", 4);
  EXPECT_NE(ClHash64(a, 1), ClHash64(b, 1));
}

TEST(ClHash, TailBytesAllContribute) {
  // Regression: for 9..15-byte buffers, bytes past the first 8 must affect
  // the digest (a miscomputed tail offset once dropped byte 8 entirely,
  // collapsing all probes of a string prefix Bloom filter to one hash).
  for (size_t len = 9; len <= 15; ++len) {
    std::string a(len, 'q');
    for (size_t pos = 8; pos < len; ++pos) {
      std::string b = a;
      b[pos] = 'r';
      EXPECT_NE(ClHash64(a, 5), ClHash64(b, 5))
          << "len=" << len << " pos=" << pos;
    }
  }
}

TEST(ClHash, AllLengthsDistinct) {
  std::string base(64, 'z');
  std::vector<uint64_t> seen;
  for (size_t len = 0; len <= 64; ++len) {
    seen.push_back(ClHash64(base.data(), len, 3));
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    for (size_t j = i + 1; j < seen.size(); ++j) {
      EXPECT_NE(seen[i], seen[j]);
    }
  }
}

// Chi-squared uniformity smoke test: hash 200K random items into 256
// buckets; the statistic should be within a generous bound around its
// expectation (df = 255, mean 255, sd ~ sqrt(2*255) ~ 22.6).
template <typename HashFn>
void CheckUniform(HashFn&& fn, const char* what) {
  constexpr int kBuckets = 256;
  constexpr int kItems = 200000;
  std::vector<int> counts(kBuckets, 0);
  Rng rng(2024);
  for (int i = 0; i < kItems; ++i) {
    counts[fn(rng.Next()) % kBuckets]++;
  }
  double expected = static_cast<double>(kItems) / kBuckets;
  double chi2 = 0;
  for (int c : counts) {
    double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 255 + 8 * 22.6) << what << " chi2=" << chi2;
  EXPECT_GT(chi2, 255 - 8 * 22.6) << what << " chi2=" << chi2;
}

TEST(HashUniformity, Murmur3Int) {
  CheckUniform([](uint64_t x) { return Murmur3Int64(x, 12345); },
               "Murmur3Int64");
}

TEST(HashUniformity, ClHashOnBinaryKeys) {
  CheckUniform(
      [](uint64_t x) {
        char buf[8];
        std::memcpy(buf, &x, 8);
        return ClHash64(buf, 8, 12345);
      },
      "ClHash64");
}

TEST(HashUniformity, ClHashAvalanche) {
  // Flipping one input bit should flip ~32 of 64 output bits on average.
  Rng rng(5);
  double total_flips = 0;
  int samples = 2000;
  for (int i = 0; i < samples; ++i) {
    uint64_t x = rng.Next();
    char buf[8];
    std::memcpy(buf, &x, 8);
    uint64_t h0 = ClHash64(buf, 8, 0);
    uint64_t y = x ^ (uint64_t{1} << rng.NextBelow(64));
    std::memcpy(buf, &y, 8);
    uint64_t h1 = ClHash64(buf, 8, 0);
    total_flips += PopCount64(h0 ^ h1);
  }
  double avg = total_flips / samples;
  EXPECT_GT(avg, 28.0);
  EXPECT_LT(avg, 36.0);
}

}  // namespace
}  // namespace proteus
