// Unit and property tests for BitVector and RankSelect.

#include <gtest/gtest.h>

#include <vector>

#include "util/bit_vector.h"
#include "util/random.h"
#include "util/rank_select.h"

namespace proteus {
namespace {

TEST(BitVector, PushAndGet) {
  BitVector bv;
  for (int i = 0; i < 200; ++i) bv.PushBack(i % 3 == 0);
  ASSERT_EQ(bv.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(bv.Get(i), i % 3 == 0) << i;
}

TEST(BitVector, SetClear) {
  BitVector bv(130, false);
  bv.Set(0);
  bv.Set(64);
  bv.Set(129);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(129));
  EXPECT_EQ(bv.CountOnes(), 3u);
  bv.Set(64, false);
  EXPECT_FALSE(bv.Get(64));
  EXPECT_EQ(bv.CountOnes(), 2u);
}

TEST(BitVector, PushBits) {
  BitVector bv;
  bv.PushBits(0b1011, 4);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(1));
  EXPECT_FALSE(bv.Get(2));
  EXPECT_TRUE(bv.Get(3));
}

TEST(BitVector, AllOnesConstructorTrims) {
  BitVector bv(70, true);
  EXPECT_EQ(bv.CountOnes(), 70u);
}

class RankSelectRandomTest : public ::testing::TestWithParam<
                                 std::tuple<uint64_t /*size*/, int /*density_pct*/>> {};

TEST_P(RankSelectRandomTest, MatchesReference) {
  auto [n, density] = GetParam();
  Rng rng(n * 131 + static_cast<uint64_t>(density));
  BitVector bv;
  std::vector<uint64_t> prefix_ones(n + 1, 0);
  for (uint64_t i = 0; i < n; ++i) {
    bool one = rng.NextBelow(100) < static_cast<uint64_t>(density);
    bv.PushBack(one);
    prefix_ones[i + 1] = prefix_ones[i] + (one ? 1 : 0);
  }
  RankSelect rs(&bv);
  ASSERT_EQ(rs.ones(), prefix_ones[n]);

  // Rank at sampled positions plus boundaries.
  for (uint64_t i = 0; i <= n; i += std::max<uint64_t>(1, n / 997)) {
    ASSERT_EQ(rs.Rank1(i), prefix_ones[i]) << "rank1 at " << i;
    ASSERT_EQ(rs.Rank0(i), i - prefix_ones[i]) << "rank0 at " << i;
  }
  ASSERT_EQ(rs.Rank1(n), prefix_ones[n]);

  // Select1 / Select0 against a linear reference.
  std::vector<uint64_t> one_pos, zero_pos;
  for (uint64_t i = 0; i < n; ++i) {
    (bv.Get(i) ? one_pos : zero_pos).push_back(i);
  }
  for (uint64_t r = 1; r <= one_pos.size();
       r += std::max<uint64_t>(1, one_pos.size() / 499)) {
    ASSERT_EQ(rs.Select1(r), one_pos[r - 1]) << "select1 " << r;
  }
  if (!one_pos.empty()) {
    ASSERT_EQ(rs.Select1(one_pos.size()), one_pos.back());
  }
  for (uint64_t r = 1; r <= zero_pos.size();
       r += std::max<uint64_t>(1, zero_pos.size() / 499)) {
    ASSERT_EQ(rs.Select0(r), zero_pos[r - 1]) << "select0 " << r;
  }
  if (!zero_pos.empty()) {
    ASSERT_EQ(rs.Select0(zero_pos.size()), zero_pos.back());
  }

  // Select/rank are inverse: Rank1(Select1(r)) == r - 1.
  for (uint64_t r = 1; r <= rs.ones();
       r += std::max<uint64_t>(1, rs.ones() / 250)) {
    ASSERT_EQ(rs.Rank1(rs.Select1(r)), r - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RankSelectRandomTest,
    ::testing::Combine(::testing::Values(1, 63, 64, 65, 511, 512, 513, 4096,
                                         100000),
                       ::testing::Values(1, 10, 50, 90, 99)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param));
    });

TEST(RankSelect, EmptyVector) {
  BitVector bv;
  RankSelect rs(&bv);
  EXPECT_EQ(rs.ones(), 0u);
  EXPECT_EQ(rs.Rank1(0), 0u);
}

TEST(RankSelect, AllOnes) {
  BitVector bv(1000, true);
  RankSelect rs(&bv);
  EXPECT_EQ(rs.ones(), 1000u);
  for (uint64_t r = 1; r <= 1000; r += 37) EXPECT_EQ(rs.Select1(r), r - 1);
}

TEST(RankSelect, AllZeros) {
  BitVector bv(1000, false);
  RankSelect rs(&bv);
  EXPECT_EQ(rs.ones(), 0u);
  for (uint64_t r = 1; r <= 1000; r += 37) EXPECT_EQ(rs.Select0(r), r - 1);
}

TEST(RankSelect, OracleOnRandomAndDegenerateVectors) {
  // Randomized oracle: every Rank1/Rank0/Select1/Select0 answer must match
  // a naive popcount scan, on random, all-zero, and all-one vectors whose
  // lengths straddle word and 512-bit block boundaries.
  Rng rng(2024);
  std::vector<uint64_t> sizes = {1,    63,   64,   65,   511,  512,
                                 513,  1023, 1024, 1025, 4095, 4096,
                                 4097, 12345};
  for (uint64_t n : sizes) {
    for (int kind = 0; kind < 3; ++kind) {  // 0 random, 1 zeros, 2 ones
      BitVector bv;
      for (uint64_t i = 0; i < n; ++i) {
        bv.PushBack(kind == 2 || (kind == 0 && rng.NextBelow(2) == 1));
      }
      RankSelect rs(&bv);
      // Naive oracle scan.
      uint64_t ones = 0;
      std::vector<uint64_t> one_pos, zero_pos;
      for (uint64_t i = 0; i < n; ++i) {
        ASSERT_EQ(rs.Rank1(i), ones) << "n=" << n << " kind=" << kind;
        ASSERT_EQ(rs.Rank0(i), i - ones);
        if (bv.Get(i)) {
          ++ones;
          one_pos.push_back(i);
        } else {
          zero_pos.push_back(i);
        }
      }
      ASSERT_EQ(rs.Rank1(n), ones) << "Rank1(size()) n=" << n;
      ASSERT_EQ(rs.ones(), ones);
      for (uint64_t r = 1; r <= one_pos.size(); ++r) {
        ASSERT_EQ(rs.Select1(r), one_pos[r - 1]) << "n=" << n;
      }
      for (uint64_t r = 1; r <= zero_pos.size(); ++r) {
        ASSERT_EQ(rs.Select0(r), zero_pos[r - 1]) << "n=" << n;
      }
    }
  }
}

TEST(RankSelect, SelectAtExactBlockBoundaries) {
  // Ones placed exactly at 512-bit block seams, where the binary search
  // over the block directory must land on the right side.
  BitVector bv(4096 + 1, false);
  std::vector<uint64_t> pos = {0,    511,  512,  513,  1023, 1024,
                               2047, 2048, 4095, 4096};
  for (uint64_t p : pos) bv.Set(p);
  RankSelect rs(&bv);
  ASSERT_EQ(rs.ones(), pos.size());
  for (size_t r = 1; r <= pos.size(); ++r) {
    EXPECT_EQ(rs.Select1(r), pos[r - 1]) << r;
    EXPECT_EQ(rs.Rank1(pos[r - 1]), r - 1);
    EXPECT_EQ(rs.Rank1(pos[r - 1] + 1), r);
  }
  // Zeros at seam positions, dual check.
  BitVector inv(4096 + 1, true);
  for (uint64_t p : pos) inv.Set(p, false);
  RankSelect rsz(&inv);
  ASSERT_EQ(rsz.zeros(), pos.size());
  for (size_t r = 1; r <= pos.size(); ++r) {
    EXPECT_EQ(rsz.Select0(r), pos[r - 1]) << r;
  }
}

TEST(RankSelect, SizeBitsAccountsForIndex) {
  BitVector bv(1 << 16, false);
  RankSelect rs(&bv);
  // Two 64-bit index words per 512-bit block plus one sentinel pair.
  const uint64_t blocks = (1 << 16) / 512;
  EXPECT_EQ(rs.SizeBits(), 64 * 2 * (blocks + 1));
}

TEST(RankSelect, SparseOnes) {
  BitVector bv(100000, false);
  std::vector<uint64_t> pos = {0, 777, 12345, 54321, 99999};
  for (uint64_t p : pos) bv.Set(p);
  RankSelect rs(&bv);
  ASSERT_EQ(rs.ones(), pos.size());
  for (size_t r = 1; r <= pos.size(); ++r) {
    EXPECT_EQ(rs.Select1(r), pos[r - 1]);
  }
}

}  // namespace
}  // namespace proteus
