// Cross-validation of the CPFPR model's probe accounting (Eq. 5) against
// the filter's actual behavior: for a forced Proteus configuration, the
// model's per-query Bloom-probe count must equal the number of probes the
// real filter issues. We verify by brute force — enumerate the trie's
// matched l1 regions and count l2 prefixes — on randomized workloads.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "model/cpfpr.h"
#include "util/bits.h"
#include "util/random.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace proteus {
namespace {

// Reference: number of l2-prefix probes Proteus issues for empty query
// [lo, hi] with trie depth l1 (Section 4.2): for each l1-prefix of the
// query that is present in K_l1, the l2-prefixes of Q under it.
uint64_t BruteForceRegions(const std::vector<uint64_t>& keys, uint64_t lo,
                           uint64_t hi, uint32_t l1, uint32_t l2) {
  std::set<uint64_t> k_l1;
  for (uint64_t k : keys) k_l1.insert(PrefixBits64(k, l1));
  uint64_t total = 0;
  for (uint64_t p = PrefixBits64(lo, l1);; ++p) {
    if (k_l1.count(p)) {
      uint64_t region_lo = std::max(lo, PrefixRangeLo64(p, l1));
      uint64_t region_hi = std::min(hi, PrefixRangeHi64(p, l1));
      total += PrefixCountInRange64(region_lo, region_hi, l2);
    }
    if (p == PrefixBits64(hi, l1)) break;
  }
  return total;
}

class RegionsTest : public ::testing::TestWithParam<Dataset> {};

TEST_P(RegionsTest, ModelProbeCountMatchesBruteForce) {
  auto keys = GenerateKeys(GetParam(), 2000, 91);
  QuerySpec spec;
  spec.dist = QueryDist::kCorrelated;
  spec.range_max = uint64_t{1} << 12;
  spec.corr_degree = uint64_t{1} << 16;
  auto queries = GenerateQueries(keys, spec, 300, 92);
  CpfprModel model(keys, queries);

  // The model's accounting is reachable through expected FPR with p fixed:
  // compare via the exact evaluation path at p -> probabilities, or
  // directly re-derive the record. We re-derive per query here.
  for (const auto& q : queries) {
    auto succ = std::lower_bound(keys.begin(), keys.end(), q.lo);
    uint32_t left_lcp = 0, right_lcp = 0;
    if (succ != keys.begin()) left_lcp = LcpBits64(*(succ - 1), q.lo);
    if (succ != keys.end()) right_lcp = LcpBits64(*succ, q.hi);
    uint32_t lcp = std::max(left_lcp, right_lcp);
    for (uint32_t l1 : {6u, 10u, 14u, 18u}) {
      if (l1 > lcp) continue;  // trie resolves: no probes
      for (uint32_t l2 : {24u, 32u, 48u}) {
        if (l2 <= lcp) continue;  // guaranteed FP: probes stop at first hit
        uint64_t brute = BruteForceRegions(keys, q.lo, q.hi, l1, l2);
        // Access the model's count through the same formula it uses.
        // (Mirror of CpfprModel::ProteusRegions, validated structurally in
        // cpfpr_model_test; here we check it against ground truth.)
        uint64_t modeled;
        if (PrefixCountInRange64(q.lo, q.hi, l1) == 1) {
          modeled = PrefixCountInRange64(q.lo, q.hi, l2);
        } else {
          modeled = 0;
          if (left_lcp >= l1) {
            uint64_t region_hi =
                PrefixRangeHi64(PrefixBits64(q.lo, l1), l1);
            modeled += PrefixCountInRange64(q.lo, std::min(q.hi, region_hi),
                                            l2);
          }
          if (right_lcp >= l1) {
            uint64_t region_lo =
                PrefixRangeLo64(PrefixBits64(q.hi, l1), l1);
            modeled += PrefixCountInRange64(std::max(q.lo, region_lo), q.hi,
                                            l2);
          }
        }
        ASSERT_EQ(modeled, brute)
            << "l1=" << l1 << " l2=" << l2 << " q=[" << q.lo << "," << q.hi
            << "] lcp=" << lcp;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, RegionsTest,
                         ::testing::Values(Dataset::kUniform,
                                           Dataset::kNormal,
                                           Dataset::kFacebook),
                         [](const auto& info) {
                           return DatasetName(info.param);
                         });

TEST(RegionsTest, EquationFiveCases) {
  // Direct spot checks of Eq. 5's three cases through the model:
  // a clustered key set with a known layout.
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 64; ++i) {
    keys.push_back((uint64_t{0xAA} << 56) | (i << 8));
  }
  // Case 1: lcp(Q,K) < l1 -> trie resolves, FPR 0.
  std::vector<RangeQuery> far = {{1000, 2000}};
  CpfprModel far_model(keys, far);
  EXPECT_EQ(far_model.ProteusFpr(16, 32, 1 << 20), 0.0);
  // Case 3: l2 <= lcp(Q,K) -> guaranteed FP (query inside a key's l2
  // region).
  std::vector<RangeQuery> close = {{(uint64_t{0xAA} << 56) | 1,
                                    (uint64_t{0xAA} << 56) | 3}};
  CpfprModel close_model(keys, close);
  EXPECT_EQ(close_model.ProteusFpr(8, 16, 1 << 20), 1.0);
}

}  // namespace
}  // namespace proteus
