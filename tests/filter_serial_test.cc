// Serialization round-trips: every filter family must survive
// Serialize -> Deserialize with bit-identical SizeBits and identical
// MayContain answers over a query sweep, and corrupt blobs must fail
// cleanly instead of crashing.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bloom/bloom_filter.h"
#include "core/filter_registry.h"
#include "lsm/filter_policy.h"
#include "surf/surf.h"  // EncodeKeyBE
#include "trie/bit_trie.h"
#include "util/bit_vector.h"
#include "util/random.h"
#include "workload/datasets.h"
#include "workload/queries.h"
#include "workload/string_gen.h"

namespace proteus {
namespace {

// A query sweep mixing point probes on keys, ranges around keys, and
// random (mostly empty) ranges — enough to expose any structural
// difference between the original and the restored filter.
std::vector<RangeQuery> QuerySweep(const std::vector<uint64_t>& keys,
                                   uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<RangeQuery> out;
  out.reserve(3 * n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t k = keys[rng.NextBelow(keys.size())];
    out.push_back({k, k});
    uint64_t width = uint64_t{1} << rng.NextBelow(16);
    out.push_back({k >= width ? k - width : 0,
                   k <= ~uint64_t{0} - width ? k + width : ~uint64_t{0}});
    uint64_t lo = rng.Next();
    out.push_back({lo, lo + rng.NextBelow(1 << 12)});
  }
  return out;
}

class IntRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(IntRoundTripTest, IdenticalSizeAndAnswers) {
  const char* spec = GetParam();
  auto keys = GenerateKeys(Dataset::kNormal, 5000, 61);
  QuerySpec qspec;
  qspec.dist = QueryDist::kCorrelated;
  qspec.range_max = uint64_t{1} << 6;
  auto samples = GenerateQueries(keys, qspec, 800, 62);

  std::string error;
  auto original = FilterRegistry::Global().Create(spec, keys, samples, &error);
  ASSERT_NE(original, nullptr) << spec << ": " << error;

  std::string blob;
  original->Serialize(&blob);
  auto restored_base = Filter::Deserialize(blob, &error);
  ASSERT_NE(restored_base, nullptr) << spec << ": " << error;
  ASSERT_EQ(restored_base->kind(), Filter::KeyKind::kInt);
  auto* restored = dynamic_cast<RangeFilter*>(restored_base.get());
  ASSERT_NE(restored, nullptr);

  EXPECT_EQ(restored->SizeBits(), original->SizeBits()) << spec;
  EXPECT_EQ(restored->Name(), original->Name()) << spec;
  EXPECT_EQ(restored->FamilyId(), original->FamilyId()) << spec;

  for (const RangeQuery& q : QuerySweep(keys, 63, 1500)) {
    ASSERT_EQ(restored->MayContain(q.lo, q.hi),
              original->MayContain(q.lo, q.hi))
        << spec << " diverged on [" << q.lo << ", " << q.hi << "]";
  }

  // Re-serializing the restored filter must reproduce the blob exactly.
  std::string blob2;
  restored->Serialize(&blob2);
  EXPECT_EQ(blob, blob2) << spec;
}

INSTANTIATE_TEST_SUITE_P(
    AllIntFamilies, IntRoundTripTest,
    ::testing::Values("proteus:bpk=14", "proteus:trie=16,bloom=48",
                      "proteus:bpk=12,trie=20,bloom=0", "onepbf:bpk=12",
                      "twopbf:bpk=12", "twopbf:l1=12,l2=40,frac1=0.4",
                      "rosetta:bpk=14", "rosetta:bpk=14,blocked=0",
                      "surf:mode=base", "surf:mode=real,suffix=8",
                      "surf:mode=hash,suffix=4", "bloom:bpk=12",
                      "proteus:bpk=14,blocked=0", "proteus:bpk=14,blocked=1",
                      "onepbf:bpk=12,blocked=0",
                      "twopbf:l1=12,l2=40,blocked=1"));

class StrRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(StrRoundTripTest, IdenticalSizeAndAnswers) {
  const char* spec = GetParam();
  auto keys = GenerateStrKeys(StrDataset::kDomains, 3000, 0, 64);
  StrQuerySpec qspec;
  qspec.dist = StrQueryDist::kCorrelated;
  auto samples = GenerateStrQueries(keys, qspec, 400, 65);

  std::string error;
  auto original =
      FilterRegistry::Global().CreateStr(spec, keys, samples, &error);
  ASSERT_NE(original, nullptr) << spec << ": " << error;

  std::string blob;
  original->Serialize(&blob);
  auto restored_base = Filter::Deserialize(blob, &error);
  ASSERT_NE(restored_base, nullptr) << spec << ": " << error;
  ASSERT_EQ(restored_base->kind(), Filter::KeyKind::kStr);
  auto* restored = dynamic_cast<StrRangeFilter*>(restored_base.get());
  ASSERT_NE(restored, nullptr);

  EXPECT_EQ(restored->SizeBits(), original->SizeBits()) << spec;
  EXPECT_EQ(restored->Name(), original->Name()) << spec;

  Rng rng(66);
  for (size_t i = 0; i < 2000; ++i) {
    const std::string& k = keys[rng.NextBelow(keys.size())];
    std::string hi = k + "zzz";
    ASSERT_EQ(restored->MayContain(k, k), original->MayContain(k, k)) << spec;
    ASSERT_EQ(restored->MayContain(k, hi), original->MayContain(k, hi))
        << spec;
    std::string random(1 + rng.NextBelow(24), '\0');
    for (char& c : random) c = static_cast<char>('a' + rng.NextBelow(26));
    std::string random_hi = random + "5";
    ASSERT_EQ(restored->MayContain(random, random_hi),
              original->MayContain(random, random_hi))
        << spec << " diverged on \"" << random << "\"";
  }

  std::string blob2;
  restored->Serialize(&blob2);
  EXPECT_EQ(blob, blob2) << spec;
}

INSTANTIATE_TEST_SUITE_P(
    AllStrFamilies, StrRoundTripTest,
    ::testing::Values("proteus-str:bpk=14",
                      "proteus-str:trie=40,bloom=80,max_key_bits=2024",
                      "surf-str:mode=base", "surf-str:mode=real,suffix=8",
                      "bloom-str:bpk=12"));

// ---------------------------------------------------------------------------
// Component round-trips
// ---------------------------------------------------------------------------

TEST(BitVectorSerial, RoundTripsAndRejectsTruncation) {
  Rng rng(67);
  for (uint64_t n_bits : {0ull, 1ull, 63ull, 64ull, 65ull, 1000ull}) {
    BitVector bv;
    for (uint64_t i = 0; i < n_bits; ++i) bv.PushBack(rng.NextBelow(2) == 1);
    std::string blob;
    bv.AppendTo(&blob);
    std::string_view view = blob;
    BitVector parsed;
    ASSERT_TRUE(BitVector::ParseFrom(&view, &parsed)) << n_bits;
    EXPECT_TRUE(view.empty());
    EXPECT_TRUE(parsed == bv) << n_bits;
    if (!blob.empty()) {
      std::string_view cut(blob.data(), blob.size() - 1);
      EXPECT_FALSE(BitVector::ParseFrom(&cut, &parsed)) << n_bits;
    }
  }
}

TEST(BitTrieSerial, RoundTripsWithIdenticalSeeks) {
  auto keys = GenerateKeys(Dataset::kUniform, 2000, 68);
  const uint32_t depth = 24;
  BitTrie trie;
  trie.Build(UniquePrefixes(keys, depth), depth);
  std::string blob;
  trie.AppendTo(&blob);
  std::string_view view = blob;
  BitTrie parsed;
  ASSERT_TRUE(BitTrie::ParseFrom(&view, &parsed));
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(parsed.SizeBits(), trie.SizeBits());
  EXPECT_EQ(parsed.depth(), trie.depth());
  EXPECT_EQ(parsed.n_values(), trie.n_values());
  Rng rng(69);
  for (size_t i = 0; i < 5000; ++i) {
    uint64_t target = rng.Next() >> (64 - depth);
    uint64_t a, b;
    bool found_a = trie.SeekGeq(target, &a);
    bool found_b = parsed.SeekGeq(target, &b);
    ASSERT_EQ(found_a, found_b);
    if (found_a) {
      ASSERT_EQ(a, b);
    }
  }
}

// ---------------------------------------------------------------------------
// Corruption and the LSM persistence path
// ---------------------------------------------------------------------------

TEST(FilterSerial, CorruptBlobsFailCleanly) {
  auto keys = GenerateKeys(Dataset::kUniform, 1000, 70);
  auto filter = FilterRegistry::Global().Create("proteus:bpk=12", keys);
  ASSERT_NE(filter, nullptr);
  std::string blob;
  filter->Serialize(&blob);

  std::string error;
  // Truncation at every interesting boundary.
  for (size_t cut : {size_t{0}, size_t{3}, size_t{8}, size_t{11},
                     size_t{12}, blob.size() / 2, blob.size() - 1}) {
    EXPECT_EQ(Filter::Deserialize(std::string_view(blob.data(), cut), &error),
              nullptr)
        << cut;
    EXPECT_FALSE(error.empty()) << cut;
  }
  // Bad magic.
  std::string bad = blob;
  bad[0] ^= 0xFF;
  EXPECT_EQ(Filter::Deserialize(bad, &error), nullptr);
  EXPECT_NE(error.find("magic"), std::string::npos);
  // Unsupported version.
  bad = blob;
  bad[4] ^= 0x7F;
  EXPECT_EQ(Filter::Deserialize(bad, &error), nullptr);
  EXPECT_NE(error.find("version"), std::string::npos);
  // Unknown family id.
  bad = blob;
  bad[8] = '\x7F';
  EXPECT_EQ(Filter::Deserialize(bad, &error), nullptr);
  EXPECT_NE(error.find("family"), std::string::npos);
}

TEST(FilterSerial, UnblockedBloomKeepsLegacyWireFormat) {
  // An unblocked BloomFilter must serialize byte-for-byte in the original
  // {u64 n_bits, u64 n_hashes, words...} layout, so blobs written before
  // the blocked layout existed stay bit-identical and loadable.
  BloomFilter bf(8192, 5, /*blocked=*/false);
  bf.InsertInt(42);
  std::string blob;
  bf.AppendTo(&blob);
  ASSERT_GE(blob.size(), 16u);
  uint64_t header[2];
  std::memcpy(header, blob.data(), 16);
  EXPECT_EQ(header[0], bf.n_bits());
  EXPECT_EQ(header[1], uint64_t{5});  // high 32 bits zero: legacy format

  // A hand-built legacy blob (as an old writer would have produced it)
  // parses into an unblocked filter.
  std::string_view view = blob;
  BloomFilter parsed;
  ASSERT_TRUE(BloomFilter::ParseFrom(&view, &parsed));
  EXPECT_FALSE(parsed.blocked());
  EXPECT_TRUE(parsed.MayContainInt(42));
}

TEST(FilterSerial, BlockedBloomCarriesVersionedFormat) {
  BloomFilter bf(8192, 5, /*blocked=*/true);
  bf.InsertInt(43);
  std::string blob;
  bf.AppendTo(&blob);
  uint64_t header[2];
  std::memcpy(header, blob.data(), 16);
  EXPECT_EQ(header[1] >> 32, 1u) << "blocked blobs must carry the format tag";

  std::string_view view = blob;
  BloomFilter parsed;
  ASSERT_TRUE(BloomFilter::ParseFrom(&view, &parsed));
  EXPECT_TRUE(parsed.blocked());
  EXPECT_TRUE(parsed.MayContainInt(43));
  EXPECT_FALSE(parsed.MayContainInt(44444));

  // A format tag from the future must be rejected, not misread.
  std::string future = blob;
  future[12] = '\x7F';  // high half of header word 1
  view = future;
  EXPECT_FALSE(BloomFilter::ParseFrom(&view, &parsed));
}

TEST(FilterSerial, BlockedAndUnblockedFiltersRoundTripThroughRegistry) {
  auto keys = GenerateKeys(Dataset::kNormal, 3000, 75);
  for (const char* spec :
       {"proteus:trie=16,bloom=48,blocked=1",
        "proteus:trie=16,bloom=48,blocked=0", "onepbf:prefix=56,blocked=1",
        "twopbf:l1=16,l2=48,blocked=1"}) {
    auto filter = FilterRegistry::Global().Create(spec, keys);
    ASSERT_NE(filter, nullptr) << spec;
    std::string blob;
    filter->Serialize(&blob);
    std::string error;
    auto restored = Filter::Deserialize(blob, &error);
    ASSERT_NE(restored, nullptr) << spec << ": " << error;
    std::string blob2;
    restored->Serialize(&blob2);
    EXPECT_EQ(blob, blob2) << spec;
  }
}

TEST(FilterSerial, HugeWireCountsAreRejectedNotAllocated) {
  // A corrupted trie depth must not reach levels_.assign (std::bad_alloc
  // would abort the process instead of failing the parse).
  auto keys = GenerateKeys(Dataset::kUniform, 500, 74);
  auto filter =
      FilterRegistry::Global().Create("proteus:trie=16,bloom=48", keys);
  ASSERT_NE(filter, nullptr);
  std::string blob;
  filter->Serialize(&blob);
  // Payload layout: 12-byte header, config (2x u32), fpr flag+value
  // (u32 + double) — the trie's depth field starts at offset 32.
  std::string bad = blob;
  for (size_t i = 32; i < 36; ++i) bad[i] = '\xFF';
  std::string error;
  EXPECT_EQ(Filter::Deserialize(bad, &error), nullptr);

  // A BitVector bit count that overflows (n_bits + 63) must be rejected,
  // not accepted with an empty word array.
  std::string bv_blob(8, '\xFF');  // n_bits = 2^64 - 1, no words
  std::string_view view = bv_blob;
  BitVector bv;
  EXPECT_FALSE(BitVector::ParseFrom(&view, &bv));
}

TEST(FilterSerial, SstFilterBlocksPersistWithoutRebuilding) {
  // The LSM path: a policy-built SST filter serializes into a block and
  // reloads as an equivalent filter, keys never re-touched.
  auto int_keys = GenerateKeys(Dataset::kNormal, 4000, 71);
  std::vector<std::string> keys;
  for (uint64_t k : int_keys) keys.push_back(EncodeKeyBE(k));
  QuerySpec qspec;
  qspec.range_max = uint64_t{1} << 8;
  auto queries = GenerateQueries(int_keys, qspec, 500, 72);
  std::vector<std::pair<std::string, std::string>> samples;
  for (const auto& q : queries) {
    samples.push_back({EncodeKeyBE(q.lo), EncodeKeyBE(q.hi)});
  }

  for (const char* spec : {"proteus:bpk=14", "surf:mode=real,suffix=4",
                           "rosetta:bpk=12", "bloom-str:bpk=12"}) {
    auto policy = MakeFilterPolicy(spec);
    ASSERT_NE(policy, nullptr) << spec;
    auto built = policy->Build(keys, samples);
    ASSERT_NE(built, nullptr) << spec;

    std::string block;
    ASSERT_TRUE(built->Serialize(&block)) << spec;
    Status status;
    auto loaded = DeserializeSstFilter(block, &status);
    ASSERT_NE(loaded, nullptr) << spec << ": " << status.ToString();
    EXPECT_EQ(loaded->SizeBits(), built->SizeBits()) << spec;

    Rng rng(73);
    for (size_t i = 0; i < 1500; ++i) {
      uint64_t lo = rng.Next();
      uint64_t hi = lo + rng.NextBelow(1 << 10);
      std::string slo = EncodeKeyBE(lo), shi = EncodeKeyBE(hi);
      ASSERT_EQ(loaded->MayContain(slo, shi), built->MayContain(slo, shi))
          << spec;
      const std::string& k = keys[rng.NextBelow(keys.size())];
      ASSERT_EQ(loaded->MayContain(k, k), built->MayContain(k, k)) << spec;
    }
  }
}

}  // namespace
}  // namespace proteus
