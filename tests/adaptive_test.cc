// Adaptive self-design, tested three ways:
//
//  * A seeded randomized differential harness: Put/Delete/Seek/MultiSeek
//    against a std::map reference, with a mid-run workload shift and a
//    close/reopen, while flushes, compactions, and drift-triggered
//    redesigns run underneath. The filters' only contract is zero false
//    negatives — every divergence from the reference model is a bug,
//    whichever subsystem caused it.
//  * A serialization property: a filter built the way a redesign builds
//    it (3-arg Build with a FilterBuildContext carrying a bpk override)
//    round-trips Serialize -> Deserialize -> Serialize bit-identically,
//    for every registered family.
//  * Format compatibility: a handcrafted legacy (v3, pre-provenance)
//    MANIFEST opens cleanly, surfaces design_epoch = 0 for every file,
//    and is upgraded to the current version on open.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "engine/scheduler.h"
#include "lsm/db.h"
#include "lsm/filter_policy.h"
#include "surf/surf.h"
#include "util/crc32c.h"
#include "util/serial.h"

namespace proteus {
namespace {

// ---------------------------------------------------------------------------
// Differential harness
// ---------------------------------------------------------------------------

struct Phase {
  uint64_t key_space;   // puts draw keys from [0, key_space)
  uint64_t range_max;   // seek ranges draw widths from [0, range_max)
  uint64_t cluster = 0; // > 0: keys/queries cluster into this many spots
  /// Added to every query's lo. Offsetting queries into the gaps
  /// between key clusters makes them empty-but-plausible: exactly the
  /// traffic that turns stale filters into false positives and feeds
  /// the drift detector.
  uint64_t query_offset = 0;
};

class Differential {
 public:
  Differential(Db* db, std::mt19937_64* rng) : db_(db), rng_(rng) {}

  void set_db(Db* db) { db_ = db; }

  void Put(const Phase& p) {
    const uint64_t k = DrawKey(p);
    const std::string v = "v" + std::to_string(k) + "#" + std::to_string(op_);
    ASSERT_TRUE(db_->Put(EncodeKeyBE(k), v).ok());
    ref_[k] = v;
    inserted_.push_back(k);
    ++op_;
  }

  void Delete() {
    if (inserted_.empty()) return;
    const uint64_t k = inserted_[(*rng_)() % inserted_.size()];
    ASSERT_TRUE(db_->Delete(EncodeKeyBE(k)).ok());
    ref_.erase(k);
    ++op_;
  }

  void Seek(const Phase& p) {
    const auto [lo, hi] = DrawRange(p);
    Check(db_->Seek(EncodeKeyBE(lo), EncodeKeyBE(hi)), lo, hi);
    ++op_;
  }

  void MultiSeek(const Phase& p, const Scheduler& scheduler) {
    QueryBatch batch;
    std::vector<std::pair<uint64_t, uint64_t>> ranges;
    for (int i = 0; i < 16; ++i) {
      const auto [lo, hi] = DrawRange(p);
      batch.push_back({EncodeKeyBE(lo), EncodeKeyBE(hi)});
      ranges.emplace_back(lo, hi);
    }
    std::vector<MultiSeekResult> results;
    db_->MultiSeek(batch, scheduler, &results);
    ASSERT_EQ(results.size(), batch.size());
    for (size_t i = 0; i < results.size(); ++i) {
      Check(results[i], ranges[i].first, ranges[i].second);
    }
    ++op_;
  }

  /// Every live key must still be visible; every deleted key must not
  /// resurrect (point-seek its exact position).
  void VerifyAll() {
    for (const auto& [k, v] : ref_) {
      SeekResult r = db_->Seek(EncodeKeyBE(k), EncodeKeyBE(k));
      ASSERT_TRUE(r.status.ok());
      ASSERT_TRUE(r.found) << "false negative for key " << k;
      EXPECT_EQ(r.value, v) << "stale value for key " << k;
    }
  }

  size_t live_keys() const { return ref_.size(); }

 private:
  uint64_t DrawKey(const Phase& p) {
    if (p.cluster == 0) return (*rng_)() % p.key_space;
    // Clustered: a hotspot base plus a small offset.
    const uint64_t spot = ((*rng_)() % p.cluster) * (p.key_space / p.cluster);
    return spot + (*rng_)() % (p.range_max * 8 + 1);
  }

  std::pair<uint64_t, uint64_t> DrawRange(const Phase& p) {
    const uint64_t lo = DrawKey(p) + p.query_offset;
    return {lo, lo + (*rng_)() % (p.range_max + 1)};
  }

  void Check(const SeekResult& r, uint64_t lo, uint64_t hi) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    auto it = ref_.lower_bound(lo);
    if (it != ref_.end() && it->first <= hi) {
      ASSERT_TRUE(r.found) << "false negative in [" << lo << ", " << hi
                           << "]: expected key " << it->first;
      EXPECT_EQ(r.key, EncodeKeyBE(it->first));
      EXPECT_EQ(r.value, it->second);
    } else {
      EXPECT_FALSE(r.found) << "phantom key in [" << lo << ", " << hi << "]";
    }
  }

  Db* db_;
  std::mt19937_64* rng_;
  std::map<uint64_t, std::string> ref_;
  std::vector<uint64_t> inserted_;
  uint64_t op_ = 0;
};

DbOptions AdaptiveOptions(const std::string& dir, size_t shards) {
  DbOptions options;
  options.dir = dir;
  options.memtable_bytes = 16 << 10;  // frequent flushes
  options.sst_target_bytes = 32 << 10;
  options.l0_compaction_trigger = 2;
  options.l1_size_bytes = 64 << 10;
  options.level_size_multiplier = 4.0;
  options.memtable_shards = shards;
  options.wal_sync = false;  // group commit still orders the writes
  options.filter_policy = MakeFilterPolicy("proteus:bpk=12");
  options.queue_options = {.capacity = 2000, .sample_rate = 1};
  // Harness-sized drift thresholds so redesigns actually happen inside
  // a few thousand operations.
  options.drift.min_probes = 64;
  options.drift.min_window_samples = 32;
  return options;
}

void RunDifferential(size_t shards, uint64_t seed) {
  const std::string dir =
      "/tmp/proteus_adaptive_" + std::to_string(shards) + "_" +
      std::to_string(seed);
  DbOptions options = AdaptiveOptions(dir, shards);

  auto [db, create_status] = Db::Create(options);
  ASSERT_TRUE(create_status.ok()) << create_status.ToString();

  std::mt19937_64 rng(seed);
  Differential diff(db.get(), &rng);
  auto scheduler = SchedulerRegistry::Global().Create("sorted");
  ASSERT_NE(scheduler, nullptr);

  // Phase A: uniform keys, wide scans. Phase B (the shift): clustered
  // keys, point-ish lookups. A close/reopen sits between them, so phase
  // B reads cross recovered state and phase-A-designed filters.
  const Phase phase_a{/*key_space=*/uint64_t{1} << 30,
                      /*range_max=*/uint64_t{1} << 14};
  // Queries sit just past each cluster's keys: empty, but sharing a
  // long prefix with live keys — the hardest traffic for a filter
  // designed against the old wide-scan window.
  const Phase phase_b{/*key_space=*/uint64_t{1} << 30,
                      /*range_max=*/uint64_t{1} << 4, /*cluster=*/64,
                      /*query_offset=*/512};

  auto run_phase = [&](const Phase& p, int ops) {
    for (int i = 0; i < ops; ++i) {
      const uint64_t dice = rng() % 100;
      if (dice < 40) {
        diff.Put(p);
      } else if (dice < 50) {
        diff.Delete();
      } else if (dice < 90) {
        diff.Seek(p);
      } else {
        diff.MultiSeek(p, *scheduler);
      }
      if (testing::Test::HasFatalFailure()) return;
    }
  };

  run_phase(phase_a, 1500);
  ASSERT_FALSE(testing::Test::HasFatalFailure());
  ASSERT_TRUE(db->CompactAll().ok());
  db->WaitForBackground();

  // Reopen mid-run: phase B continues against recovered files whose
  // probe counters and design provenance came back from the MANIFEST.
  db.reset();
  auto [reopened, open_status] = Db::Open(options);
  ASSERT_TRUE(open_status.ok()) << open_status.ToString();
  db = std::move(reopened);
  diff.set_db(db.get());

  run_phase(phase_b, 1500);
  ASSERT_FALSE(testing::Test::HasFatalFailure());

  // Phase B's own puts flushed and compacted the tree, so its youngest
  // files were designed from the B window — those designs are current,
  // and correctly undisturbed. Shift the reads once more (back to wide
  // uniform scans) and keep serving until drift-triggered redesigns ran
  // (bounded; the differential checks stay on the whole time). Pure
  // seeks: a put here would flush/compact the tree and replace the very
  // files whose probe counters are accumulating toward the threshold.
  for (int round = 0; round < 40 && db->stats().redesigns == 0; ++round) {
    for (int i = 0; i < 400; ++i) diff.Seek(phase_a);
    ASSERT_FALSE(testing::Test::HasFatalFailure());
    db->WaitForBackground();
  }
  EXPECT_GT(db->stats().redesigns, 0u)
      << "shifted workload never triggered a redesign";
  EXPECT_GT(db->stats().drift_detected, 0u);

  diff.VerifyAll();
  ASSERT_GT(diff.live_keys(), 100u);  // the run actually built a tree
  ASSERT_TRUE(db->background_error().ok());
}

TEST(AdaptiveDifferentialTest, SingleShard) { RunDifferential(1, 0xA11CE); }

TEST(AdaptiveDifferentialTest, EightShards) { RunDifferential(8, 0xB0B); }

// ---------------------------------------------------------------------------
// Redesigned filters round-trip their serialized form bit-identically
// ---------------------------------------------------------------------------

const char* kFamilySpecs[] = {
    "proteus:bpk=14",
    "onepbf:bpk=12",
    "twopbf:bpk=12",
    "rosetta:bpk=14",
    "surf:mode=real,suffix=4",
    "surf-str:mode=real,suffix=4",
    "proteus-str:bpk=14,max_key_bits=64",
    "bloom:bpk=12",
    "bloom-str:bpk=12",
};

TEST(AdaptiveSerializeTest, RedesignedBlobsRoundTripBitIdentically) {
  std::vector<std::string> keys;
  for (uint64_t k = 1000; k < 1000 + 400 * 97; k += 97) {
    keys.push_back(EncodeKeyBE(k));
  }
  std::vector<std::pair<std::string, std::string>> queries;
  for (uint64_t q = 500; q < 500 + 60 * 731; q += 731) {
    queries.emplace_back(EncodeKeyBE(q), EncodeKeyBE(q + 13));
  }

  for (const char* spec : kFamilySpecs) {
    SCOPED_TRACE(spec);
    Status status;
    auto policy = MakeFilterPolicy(spec, &status);
    ASSERT_NE(policy, nullptr) << status.ToString();

    // Build exactly as RedesignFileLocked would: the 3-arg Build with a
    // level and a Monkey bpk override.
    FilterBuildContext context;
    context.level = 2;
    context.bpk_override = 10.0;
    auto built = policy->Build(keys, queries, context);
    ASSERT_NE(built, nullptr);

    std::string blob1;
    ASSERT_TRUE(built->Serialize(&blob1));
    auto reloaded = DeserializeSstFilter(blob1, &status);
    ASSERT_NE(reloaded, nullptr) << status.ToString();
    std::string blob2;
    ASSERT_TRUE(reloaded->Serialize(&blob2));
    EXPECT_EQ(blob1, blob2) << "serialized form not a fixed point";
    EXPECT_EQ(built->SizeBits(), reloaded->SizeBits());

    // And the reloaded filter answers like the built one.
    for (const auto& [lo, hi] : queries) {
      EXPECT_EQ(built->MayContain(lo, hi), reloaded->MayContain(lo, hi));
    }
    for (const auto& k : keys) {
      EXPECT_TRUE(reloaded->MayContain(k, k));  // no false negatives
    }
  }
}

// ---------------------------------------------------------------------------
// Legacy (pre-provenance) MANIFEST compatibility
// ---------------------------------------------------------------------------

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

// Parses the single v4 snapshot record a clean close leaves behind and
// re-encodes it as a v3 record: same tree, no per-file provenance.
std::string DowngradeManifestToV3(const std::string& manifest) {
  std::string_view cursor(manifest);
  // Frame: length u32 | crc32c u32 | payload.
  EXPECT_GE(cursor.size(), 8u);
  const uint32_t length = LoadFixed32(cursor.data());
  cursor.remove_prefix(8);
  std::string_view payload = cursor.substr(0, length);

  EXPECT_EQ(payload[0], 1);  // snapshot record
  payload.remove_prefix(1);
  uint64_t magic, version, next_id, last_seqno, n_levels;
  EXPECT_TRUE(GetFixed64(&payload, &magic));
  EXPECT_TRUE(GetFixed64(&payload, &version));
  EXPECT_EQ(version, 4u);
  EXPECT_TRUE(GetFixed64(&payload, &next_id));
  EXPECT_TRUE(GetFixed64(&payload, &last_seqno));
  EXPECT_TRUE(GetFixed64(&payload, &n_levels));

  std::string out;
  out.push_back(1);
  PutFixed64(&out, magic);
  PutFixed64(&out, 3);  // the pre-provenance format
  PutFixed64(&out, next_id);
  PutFixed64(&out, last_seqno);
  PutFixed64(&out, n_levels);
  for (uint64_t l = 0; l < n_levels; ++l) {
    uint64_t n_files;
    EXPECT_TRUE(GetFixed64(&payload, &n_files));
    PutFixed64(&out, n_files);
    for (uint64_t i = 0; i < n_files; ++i) {
      uint64_t id, n_entries, file_size;
      std::string smallest, largest;
      EXPECT_TRUE(GetFixed64(&payload, &id));
      EXPECT_TRUE(GetLengthPrefixed(&payload, &smallest));
      EXPECT_TRUE(GetLengthPrefixed(&payload, &largest));
      EXPECT_TRUE(GetFixed64(&payload, &n_entries));
      EXPECT_TRUE(GetFixed64(&payload, &file_size));
      // Skip the 7 v4 provenance/counter words.
      for (int skip = 0; skip < 7; ++skip) {
        uint64_t ignored;
        EXPECT_TRUE(GetFixed64(&payload, &ignored));
      }
      PutFixed64(&out, id);
      PutLengthPrefixed(&out, smallest);
      PutLengthPrefixed(&out, largest);
      PutFixed64(&out, n_entries);
      PutFixed64(&out, file_size);
    }
  }
  std::string framed;
  AppendCrcFrame(&framed, out);
  return framed;
}

TEST(AdaptiveManifestTest, LegacyV3ManifestOpensWithEpochZero) {
  const std::string dir = "/tmp/proteus_adaptive_legacy";
  DbOptions options = AdaptiveOptions(dir, 1);
  {
    auto [db, status] = Db::Create(options);
    ASSERT_TRUE(status.ok()) << status.ToString();
    for (uint64_t k = 0; k < 2000; ++k) {
      ASSERT_TRUE(db->Put(EncodeKeyBE(k * 31), "v" + std::to_string(k)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->CompactAll().ok());
    db->WaitForBackground();
  }  // clean close snapshots a v4 MANIFEST

  const std::string manifest_path = dir + "/MANIFEST";
  WriteFile(manifest_path, DowngradeManifestToV3(ReadFile(manifest_path)));

  auto [db, status] = Db::Open(options);
  ASSERT_TRUE(status.ok()) << status.ToString();
  auto info = db->DesignInfo();
  ASSERT_FALSE(info.empty());
  for (const auto& f : info) {
    EXPECT_EQ(f.design_epoch, 0u) << "legacy file " << f.file_id;
    EXPECT_LT(f.modeled_fpr, 0.0);
    EXPECT_EQ(f.probes, 0u);
    EXPECT_FALSE(f.drift_flagged);
  }
  // Every key survived the downgrade/upgrade round trip.
  for (uint64_t k = 0; k < 2000; ++k) {
    SeekResult r = db->Seek(EncodeKeyBE(k * 31), EncodeKeyBE(k * 31));
    ASSERT_TRUE(r.found) << "lost key " << k * 31;
    EXPECT_EQ(r.value, "v" + std::to_string(k));
  }
  // Open auto-upgraded the legacy log: the on-disk snapshot is current
  // again (version word sits right after the record kind + magic).
  const std::string upgraded = ReadFile(manifest_path);
  ASSERT_GE(upgraded.size(), 8u + 1u + 16u);
  std::string_view payload(upgraded.data() + 8, upgraded.size() - 8);
  payload.remove_prefix(1);  // record kind
  uint64_t magic, version;
  ASSERT_TRUE(GetFixed64(&payload, &magic));
  ASSERT_TRUE(GetFixed64(&payload, &version));
  EXPECT_EQ(version, 4u);
}

}  // namespace
}  // namespace proteus
