// The sharded write path: concurrent skiplist inserts, hash-routed
// memtable shards, the merged flush (N shards -> one SST, byte-identical
// to the single-shard build), WAL replay into a sharded memtable, and
// the positioned Seek that walks dense tombstone runs at O(files)
// instead of O(tombstones x files).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "lsm/db.h"
#include "lsm/skiplist.h"
#include "surf/surf.h"
#include "util/random.h"

namespace proteus {
namespace {

DbOptions ShardDbOptions(const std::string& name, size_t shards) {
  DbOptions options;
  options.dir = "/tmp/proteus_shard_test_" + name;
  options.memtable_bytes = 1 << 20;
  options.sst_target_bytes = 4 << 20;
  options.block_size = 1024;
  options.block_cache_bytes = 1 << 20;
  options.l0_compaction_trigger = 8;  // flushes land in L0 untouched
  options.wal_sync = false;
  options.memtable_shards = shards;
  return options;
}

TEST(SkipListConcurrent, ParallelAddsProduceOneOrderedList) {
  SkipList list;
  const int kThreads = 4;
  const uint64_t kPerThread = 5000;
  // Unique (key, seqno) pairs across threads (the Db's leader guarantees
  // this in production); keys deliberately collide across threads so the
  // CAS retry path in Add() actually runs.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&list, t] {
      Rng rng(300 + t);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t k = rng.NextBelow(1000);
        uint64_t seqno = static_cast<uint64_t>(t) * kPerThread + i + 1;
        list.Add(EncodeKeyBE(k), seqno,
                 "t" + std::to_string(t) + "#" + std::to_string(i));
      }
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_EQ(list.size(), kThreads * kPerThread);
  // Every version made it in, in internal order: key ascending, seqno
  // strictly descending within a key, no duplicates and no losses.
  std::vector<std::tuple<std::string, uint64_t, std::string>> got;
  list.ForEach([&got](std::string_view key, uint64_t seqno,
                      std::string_view value) {
    got.emplace_back(std::string(key), seqno, std::string(value));
  });
  ASSERT_EQ(got.size(), kThreads * kPerThread);
  std::vector<bool> seen(kThreads * kPerThread + 1, false);
  for (size_t i = 1; i < got.size(); ++i) {
    const auto& [pk, ps, pv] = got[i - 1];
    const auto& [ck, cs, cv] = got[i];
    ASSERT_TRUE(pk < ck || (pk == ck && ps > cs))
        << "order violated at index " << i;
  }
  for (const auto& [key, seqno, value] : got) {
    ASSERT_GE(seqno, 1u);
    ASSERT_LE(seqno, kThreads * kPerThread);
    ASSERT_FALSE(seen[seqno]) << "seqno " << seqno << " stored twice";
    seen[seqno] = true;
    // The value names its writer thread and step: recompute the key the
    // writer used at that step and make sure nothing got torn.
    int t = static_cast<int>((seqno - 1) / kPerThread);
    uint64_t i = (seqno - 1) % kPerThread;
    ASSERT_EQ(value, "t" + std::to_string(t) + "#" + std::to_string(i));
    Rng rng(300 + t);
    uint64_t k = 0;
    for (uint64_t step = 0; step <= i; ++step) k = rng.NextBelow(1000);
    ASSERT_EQ(key, EncodeKeyBE(k)) << "seqno " << seqno;
  }
}

// Replays one deterministic single-threaded workload (overwrites and
// deletes included, so merge order matters) into a fresh Db.
void RunFlushWorkload(Db* db) {
  Rng rng(411);
  for (int op = 0; op < 3000; ++op) {
    uint64_t k = rng.NextBelow(500);
    if (rng.NextBelow(8) < 6) {
      ASSERT_TRUE(db->Put(EncodeKeyBE(k), "op" + std::to_string(op)).ok());
    } else {
      ASSERT_TRUE(db->Delete(EncodeKeyBE(k)).ok());
    }
  }
}

std::map<std::string, std::string> ReadSstFiles(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= 4 || name.substr(name.size() - 4) != ".sst") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    files[name] = std::move(bytes);
  }
  return files;
}

TEST(ShardedMemtable, FlushOutputIsByteIdenticalAcrossShardCounts) {
  // The shard merge must reproduce the exact (key asc, seqno desc)
  // stream a single skiplist would have produced: same workload, same
  // seqnos, any shard count -> the same SST bytes on disk.
  std::map<std::string, std::string> reference;
  for (size_t shards : {size_t{1}, size_t{4}, size_t{16}}) {
    auto options =
        ShardDbOptions("flush" + std::to_string(shards), shards);
    auto [db, st] = Db::Create(options);
    ASSERT_TRUE(st.ok()) << st.ToString();
    RunFlushWorkload(db.get());
    ASSERT_TRUE(db->Flush().ok());
    db->WaitForBackground();
    auto files = ReadSstFiles(options.dir);
    ASSERT_FALSE(files.empty());
    if (shards == 1) {
      reference = std::move(files);
      continue;
    }
    ASSERT_EQ(files.size(), reference.size()) << shards << " shards";
    for (const auto& [name, bytes] : reference) {
      auto it = files.find(name);
      ASSERT_NE(it, files.end()) << name << " missing at " << shards;
      EXPECT_EQ(it->second, bytes)
          << name << " differs between 1 and " << shards << " shards";
    }
  }
}

TEST(ShardedMemtable, NWriterDifferentialAcrossShardCounts) {
  for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    auto options = ShardDbOptions("nw" + std::to_string(shards), shards);
    options.memtable_bytes = 64 << 10;  // force rotations mid-run
    auto [db, st] = Db::Create(options);
    ASSERT_TRUE(st.ok()) << st.ToString();
    const int kWriters = 4;
    const uint64_t kOpsPerWriter = 2000;
    // Disjoint key spaces (k % kWriters == w) make each writer's final
    // map exact regardless of interleaving.
    std::map<std::string, std::string> ref[kWriters];
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&db = *db, &ref = ref[w], w] {
        Rng rng(500 + w);
        for (uint64_t i = 0; i < kOpsPerWriter; ++i) {
          uint64_t k = rng.NextBelow(400) * uint64_t{kWriters} + w;
          std::string key = EncodeKeyBE(k);
          if (rng.NextBelow(8) < 6) {
            std::string value =
                "w" + std::to_string(w) + "#" + std::to_string(i);
            ASSERT_TRUE(db.Put(key, value).ok());
            ref[key] = value;
          } else {
            ASSERT_TRUE(db.Delete(key).ok());
            ref.erase(key);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    db->WaitForBackground();

    std::map<std::string, std::string> merged;
    for (int w = 0; w < kWriters; ++w) {
      merged.insert(ref[w].begin(), ref[w].end());
    }
    for (uint64_t k = 0; k < 400 * kWriters; ++k) {
      std::string key = EncodeKeyBE(k);
      SeekResult r = db->Seek(key, key);
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      auto it = merged.find(key);
      ASSERT_EQ(r.found, it != merged.end())
          << shards << " shards, key " << k;
      if (r.found) {
        ASSERT_EQ(r.value, it->second) << shards << " shards, key " << k;
      }
    }

    // Bookkeeping: one apply per op, histogram sized to the (power of
    // two) shard count, and live arena memory accounted.
    const DbStats s = db->stats();
    ASSERT_EQ(s.shard_applies.size(), shards);
    uint64_t applied = 0;
    for (uint64_t n : s.shard_applies) applied += n;
    EXPECT_EQ(applied, kWriters * kOpsPerWriter);
    EXPECT_EQ(s.puts + s.deletes, kWriters * kOpsPerWriter);
    EXPECT_GT(s.memtable_arena_bytes, 0u);
    if (shards >= 8) {
      // Hash routing should touch every shard with 8000 ops over 8
      // shards (each shard misses with prob ~(7/8)^1600 ~ 0).
      for (size_t i = 0; i < shards; ++i) {
        EXPECT_GT(s.shard_applies[i], 0u) << "shard " << i << " idle";
      }
    }
  }
}

TEST(ShardedMemtable, CrashReplayReproducesOrderIntoShardedMemtable) {
  auto options = ShardDbOptions("crash", 8);
  options.memtable_bytes = 8 << 20;  // all writes live in WAL at crash
  std::map<std::string, std::string> ref;
  uint64_t pre_crash_seqno = 0;
  uint64_t records = 0;
  {
    auto [db, st] = Db::Create(options);
    ASSERT_TRUE(st.ok()) << st.ToString();
    Rng rng(611);
    // Heavy overwrites: replay in any order but seqno order would
    // resurface stale versions no matter which shard they route to.
    for (int op = 0; op < 5000; ++op) {
      uint64_t k = rng.NextBelow(200);
      std::string key = EncodeKeyBE(k);
      if (rng.NextBelow(10) < 8) {
        std::string value = "op" + std::to_string(op);
        ASSERT_TRUE(db->Put(key, value).ok());
        ref[key] = value;
      } else {
        ASSERT_TRUE(db->Delete(key).ok());
        ref.erase(key);
      }
      ++records;
    }
    pre_crash_seqno = db->LastSequence();
    db->TEST_CrashClose();
  }
  auto [db, status] = Db::Open(options);
  ASSERT_NE(db, nullptr) << status.ToString();
  const DbStats s = db->stats();
  EXPECT_EQ(s.wal_replayed, records);
  EXPECT_EQ(db->LastSequence(), pre_crash_seqno);
  // Replay routed through the same hash as the live write path.
  ASSERT_EQ(s.shard_applies.size(), 8u);
  uint64_t applied = 0;
  for (uint64_t n : s.shard_applies) applied += n;
  EXPECT_EQ(applied, records);
  for (uint64_t k = 0; k < 200; ++k) {
    std::string key = EncodeKeyBE(k);
    SeekResult r = db->Seek(key, key);
    auto it = ref.find(key);
    ASSERT_EQ(r.found, it != ref.end()) << "key " << k;
    if (r.found) ASSERT_EQ(r.value, it->second) << "key " << k;
  }
}

TEST(SeekTombstones, DenseTombstoneRunCostsOneDescentPerFile) {
  auto options = ShardDbOptions("tomb", 4);
  auto [db, st] = Db::Create(options);
  ASSERT_TRUE(st.ok()) << st.ToString();
  const uint64_t kKeys = 1000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(db->Put(EncodeKeyBE(k), "v" + std::to_string(k)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  db->WaitForBackground();
  // Mass-delete everything but the last key; the tombstones stay in the
  // memtable, the values sit in the SST below them.
  for (uint64_t k = 0; k + 1 < kKeys; ++k) {
    ASSERT_TRUE(db->Delete(EncodeKeyBE(k)).ok());
  }
  db->ResetStats();

  SeekResult r = db->Seek(EncodeKeyBE(0), EncodeKeyBE(kKeys - 1));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.key, EncodeKeyBE(kKeys - 1));
  EXPECT_EQ(r.value, "v" + std::to_string(kKeys - 1));

  // The positioned cursor pays ONE index descent per file and walks
  // forward from there; before it, each of the 999 tombstones re-seeked
  // every file (sst_seeks would be ~999 here, not <= the file count).
  const DbStats s = db->stats();
  EXPECT_LE(s.sst_seeks, 4u) << "tombstone walk re-seeks the SSTs";
  EXPECT_LE(s.filter_checks, 4u) << "filter re-checked per tombstone";
}

}  // namespace
}  // namespace proteus
