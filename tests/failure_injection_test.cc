// Failure injection: corrupted and truncated SST files, filter blocks,
// and manifests must be detected (checksums / magic / bounds), never
// silently misread — and the DB read/reopen path must degrade loudly (an
// Open error or a filter rebuild) rather than return wrong data.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "lsm/block_cache.h"
#include "lsm/db.h"
#include "lsm/filter_policy.h"
#include "lsm/sst.h"
#include "surf/surf.h"
#include "util/random.h"

namespace proteus {
namespace {

std::string WriteTestSst(const std::string& path, bool compress) {
  SstWriter::Options wopts;
  wopts.block_size = 512;
  wopts.compress = compress;
  SstWriter writer(path, wopts);
  for (uint64_t i = 0; i < 2000; ++i) {
    writer.Add(EncodeKeyBE(i * 5),
               MakeSstValueV4(kTagValue, i + 1, "value" + std::to_string(i)));
  }
  EXPECT_TRUE(writer.Finish().ok());
  return path;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

class SstCorruptionTest : public ::testing::TestWithParam<bool> {};

TEST_P(SstCorruptionTest, TruncatedFileRejectedAtOpen) {
  const std::string path = "/tmp/proteus_fail_trunc.sst";
  WriteTestSst(path, GetParam());
  std::string content = ReadFile(path);
  for (double frac : {0.0, 0.3, 0.9}) {
    WriteFile(path, content.substr(
                        0, static_cast<size_t>(content.size() * frac)));
    BlockCache cache(1 << 20);
    SstReader reader;
    EXPECT_FALSE(reader.Open(path, 1, &cache).ok()) << "frac=" << frac;
  }
  ::unlink(path.c_str());
}

TEST_P(SstCorruptionTest, CorruptFooterMagicRejected) {
  const std::string path = "/tmp/proteus_fail_magic.sst";
  WriteTestSst(path, GetParam());
  std::string content = ReadFile(path);
  content[content.size() - 1] ^= 0x5A;  // magic lives in the last 8 bytes
  WriteFile(path, content);
  BlockCache cache(1 << 20);
  SstReader reader;
  EXPECT_FALSE(reader.Open(path, 1, &cache).ok());
  ::unlink(path.c_str());
}

TEST_P(SstCorruptionTest, DataBlockBitflipsDetectedOnRead) {
  const bool compress = GetParam();
  const std::string path = "/tmp/proteus_fail_flip.sst";
  WriteTestSst(path, compress);
  std::string clean = ReadFile(path);
  Rng rng(9);
  int detected = 0;
  const int kTrials = 40;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::string corrupt = clean;
    // Flip a random byte in the data area (first ~80% of the file, before
    // index + footer).
    size_t pos = rng.NextBelow(static_cast<uint64_t>(clean.size() * 0.8));
    corrupt[pos] ^= static_cast<char>(1 + rng.NextBelow(255));
    WriteFile(path, corrupt);
    BlockCache cache(1 << 20);
    SstReader reader;
    if (!reader.Open(path, 1, &cache).ok()) {
      ++detected;  // index/footer damage caught at open
      continue;
    }
    // Scan the whole key range; corruption must yield an error (-1) or a
    // correct value — never a silently wrong one.
    bool bad = false;
    for (uint64_t i = 0; i < 2000; i += 3) {
      SstReader::SeekEntry se;
      int rc = reader.SeekInRange(EncodeKeyBE(i * 5), EncodeKeyBE(i * 5),
                                  kMaxSequence, BlockReadOptions{}, &se);
      if (rc == -1 || rc == 1) {
        bad = true;  // detected (read error) or entry unreachable
      } else if (se.value != "value" + std::to_string(i)) {
        ADD_FAILURE() << "silent corruption at trial " << trial;
      }
    }
    if (bad) ++detected;
  }
  // Most single-byte flips land in checksummed payload and must be caught;
  // flips in dead bytes (padding) may legitimately go unnoticed.
  EXPECT_GE(detected, kTrials * 3 / 5) << detected << "/" << kTrials;
  ::unlink(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(CompressedAndRaw, SstCorruptionTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "compressed" : "raw";
                         });

TEST(SstFailure, MissingFile) {
  BlockCache cache(1 << 20);
  SstReader reader;
  Status s = reader.Open("/tmp/does_not_exist_proteus.sst", 1, &cache);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
}

TEST(SstFailure, EmptyFile) {
  const std::string path = "/tmp/proteus_fail_empty.sst";
  WriteFile(path, "");
  BlockCache cache(1 << 20);
  SstReader reader;
  EXPECT_FALSE(reader.Open(path, 1, &cache).ok());
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// Filter block + manifest: the persistence additions fail just as loudly.
// ---------------------------------------------------------------------------

constexpr size_t kFooterV2Size = 72;

DbOptions FailDbOptions(const std::string& name) {
  DbOptions options;
  options.dir = "/tmp/proteus_fail_db_" + name;
  options.memtable_bytes = 32 << 10;
  options.sst_target_bytes = 64 << 10;
  options.block_size = 1024;
  options.l0_compaction_trigger = 3;
  options.l1_size_bytes = 128 << 10;
  options.filter_policy = MakeFilterPolicy("proteus:bpk=12");
  return options;
}

void FillAndClose(const DbOptions& options) {
  auto [db, st] = Db::Create(options);
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(db->Put(EncodeKeyBE(i * 6), "value" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());
}

TEST(ManifestFailure, TruncationRejectedAtOpen) {
  auto options = FailDbOptions("trunc");
  FillAndClose(options);
  const std::string manifest = options.dir + "/MANIFEST";
  std::string content = ReadFile(manifest);
  ASSERT_FALSE(content.empty());
  for (double frac : {0.1, 0.6, 0.95}) {
    WriteFile(manifest,
              content.substr(0, static_cast<size_t>(content.size() * frac)));
    auto [db, status] = Db::Open(options);
    EXPECT_EQ(db, nullptr) << "frac=" << frac;
    EXPECT_FALSE(status.ok()) << "frac=" << frac;
  }
  // Restoring the manifest restores the database.
  WriteFile(manifest, content);
  auto [db, status] = Db::Open(options);
  ASSERT_NE(db, nullptr) << status.ToString();
  EXPECT_EQ(db->TotalKeys(), 2000u);
}

TEST(ManifestFailure, EveryBitflipRejectedAtOpen) {
  auto options = FailDbOptions("flip");
  FillAndClose(options);
  const std::string manifest = options.dir + "/MANIFEST";
  std::string content = ReadFile(manifest);
  ASSERT_FALSE(content.empty());
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    std::string corrupt = content;
    size_t pos = rng.NextBelow(corrupt.size());
    corrupt[pos] ^= static_cast<char>(1 + rng.NextBelow(255));
    WriteFile(manifest, corrupt);
    auto [db, status] = Db::Open(options);
    // The checksum covers every byte: any flip is a detected, explained
    // failure (a flip in the final record may instead parse as a torn
    // tail, which recovery truncates away — the database then opens with
    // the pre-delta state; both outcomes are loud, never silent).
    if (db != nullptr) {
      EXPECT_TRUE(status.ok()) << "trial " << trial;
    } else {
      EXPECT_FALSE(status.ok()) << "trial " << trial << " pos " << pos;
    }
  }
}

TEST(ManifestFailure, MissingSstFileNamedInManifestFailsOpen) {
  auto options = FailDbOptions("missing_sst");
  FillAndClose(options);
  // Delete one SST file the manifest references.
  {
    auto [db, status] = Db::Open(options);
    ASSERT_NE(db, nullptr) << status.ToString();
  }
  // Find any .sst and unlink it.
  std::string victim;
  for (uint64_t id = 1; id < 64 && victim.empty(); ++id) {
    std::string path = options.dir + "/" + std::to_string(id) + ".sst";
    if (::access(path.c_str(), F_OK) == 0) victim = path;
  }
  ASSERT_FALSE(victim.empty());
  ::unlink(victim.c_str());
  auto [db, status] = Db::Open(options);
  EXPECT_EQ(db, nullptr);
  EXPECT_FALSE(status.ok());
}

TEST(FilterBlockFailure, TruncatedFilterBlockFallsBackToRebuild) {
  auto options = FailDbOptions("filter_trunc");
  FillAndClose(options);
  // Truncating inside the filter block destroys the footer too, so that
  // file fails outright — instead shrink the recorded filter_size so the
  // checksum no longer matches (a torn write's usual shape).
  size_t damaged = 0;
  for (uint64_t id = 1; id < 64; ++id) {
    std::string path = options.dir + "/" + std::to_string(id) + ".sst";
    if (::access(path.c_str(), F_OK) != 0) continue;
    std::string content = ReadFile(path);
    ASSERT_GE(content.size(), kFooterV2Size);
    size_t footer = content.size() - kFooterV2Size;
    uint64_t filter_size;
    std::memcpy(&filter_size, content.data() + footer + 32, 8);
    if (filter_size == 0) continue;
    filter_size /= 2;
    std::memcpy(content.data() + footer + 32, &filter_size, 8);
    WriteFile(path, content);
    ++damaged;
  }
  ASSERT_GT(damaged, 0u);
  auto [db, status] = Db::Open(options);
  ASSERT_NE(db, nullptr) << status.ToString();
  EXPECT_EQ(db->stats().filter_loads, 0u);
  EXPECT_EQ(db->stats().filter_rebuilds, damaged);
  // Rebuilt filters still answer correctly.
  SeekResult r = db->Seek(EncodeKeyBE(60), EncodeKeyBE(60));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.value, "value10");
}

}  // namespace
}  // namespace proteus
