// Failure injection: corrupted and truncated SST files must be detected
// (checksums / magic / bounds), never silently misread — and the DB read
// path must degrade loudly rather than return wrong data.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "lsm/block_cache.h"
#include "lsm/sst.h"
#include "surf/surf.h"
#include "util/random.h"

namespace proteus {
namespace {

std::string WriteTestSst(const std::string& path, bool compress) {
  SstWriter::Options wopts;
  wopts.block_size = 512;
  wopts.compress = compress;
  SstWriter writer(path, wopts);
  for (uint64_t i = 0; i < 2000; ++i) {
    writer.Add(EncodeKeyBE(i * 5), "value" + std::to_string(i));
  }
  EXPECT_TRUE(writer.Finish());
  return path;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

class SstCorruptionTest : public ::testing::TestWithParam<bool> {};

TEST_P(SstCorruptionTest, TruncatedFileRejectedAtOpen) {
  const std::string path = "/tmp/proteus_fail_trunc.sst";
  WriteTestSst(path, GetParam());
  std::string content = ReadFile(path);
  for (double frac : {0.0, 0.3, 0.9}) {
    WriteFile(path, content.substr(
                        0, static_cast<size_t>(content.size() * frac)));
    BlockCache cache(1 << 20);
    SstReader reader;
    EXPECT_FALSE(reader.Open(path, 1, &cache)) << "frac=" << frac;
  }
  ::unlink(path.c_str());
}

TEST_P(SstCorruptionTest, CorruptFooterMagicRejected) {
  const std::string path = "/tmp/proteus_fail_magic.sst";
  WriteTestSst(path, GetParam());
  std::string content = ReadFile(path);
  content[content.size() - 1] ^= 0x5A;  // magic lives in the last 8 bytes
  WriteFile(path, content);
  BlockCache cache(1 << 20);
  SstReader reader;
  EXPECT_FALSE(reader.Open(path, 1, &cache));
  ::unlink(path.c_str());
}

TEST_P(SstCorruptionTest, DataBlockBitflipsDetectedOnRead) {
  const bool compress = GetParam();
  const std::string path = "/tmp/proteus_fail_flip.sst";
  WriteTestSst(path, compress);
  std::string clean = ReadFile(path);
  Rng rng(9);
  int detected = 0;
  const int kTrials = 40;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::string corrupt = clean;
    // Flip a random byte in the data area (first ~80% of the file, before
    // index + footer).
    size_t pos = rng.NextBelow(static_cast<uint64_t>(clean.size() * 0.8));
    corrupt[pos] ^= static_cast<char>(1 + rng.NextBelow(255));
    WriteFile(path, corrupt);
    BlockCache cache(1 << 20);
    SstReader reader;
    if (!reader.Open(path, 1, &cache)) {
      ++detected;  // index/footer damage caught at open
      continue;
    }
    // Scan the whole key range; corruption must yield an error (-1) or a
    // correct value — never a silently wrong one.
    bool bad = false;
    for (uint64_t i = 0; i < 2000; i += 37) {
      std::string key, value;
      int rc = reader.SeekInRange(EncodeKeyBE(i * 5), EncodeKeyBE(i * 5),
                                  &key, &value);
      if (rc == -1 || rc == 1) {
        bad = true;  // detected (read error) or entry unreachable
      } else if (value != "value" + std::to_string(i)) {
        ADD_FAILURE() << "silent corruption at trial " << trial;
      }
    }
    if (bad) ++detected;
  }
  // Most single-byte flips land in checksummed payload and must be caught;
  // flips in dead bytes (padding) may legitimately go unnoticed.
  EXPECT_GE(detected, kTrials * 3 / 5) << detected << "/" << kTrials;
  ::unlink(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(CompressedAndRaw, SstCorruptionTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "compressed" : "raw";
                         });

TEST(SstFailure, MissingFile) {
  BlockCache cache(1 << 20);
  SstReader reader;
  EXPECT_FALSE(reader.Open("/tmp/does_not_exist_proteus.sst", 1, &cache));
}

TEST(SstFailure, EmptyFile) {
  const std::string path = "/tmp/proteus_fail_empty.sst";
  WriteFile(path, "");
  BlockCache cache(1 << 20);
  SstReader reader;
  EXPECT_FALSE(reader.Open(path, 1, &cache));
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace proteus
