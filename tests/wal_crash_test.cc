// Crash-recovery fault injection for the durable write path (PR 4).
//
// The contract under test (docs/FORMAT.md, src/lsm/db.h):
//  * a Put/Delete acknowledged (Status::OK) before a crash is recovered
//    by Db::Open via WAL replay — at ANY crash offset, zero loss;
//  * a torn WAL tail (a record cut mid-frame by the crash) is rejected
//    and truncated away, never half-applied;
//  * a flipped data-block byte surfaces as a non-OK Status from
//    VerifyChecksums (and read_errors in Seek), never a wrong answer;
//  * a torn MANIFEST delta is dropped and the WAL still covers the
//    writes; a corrupted complete delta record fails Open loudly.
//
// Since the MVCC rework the WAL is a sequence of numbered segments
// (WAL-<n>), rotated at flush; records carry the group-commit seqno.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "lsm/db.h"
#include "lsm/filter_policy.h"
#include "lsm/wal.h"
#include "surf/surf.h"
#include "util/random.h"

namespace proteus {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

// Sum of bytes across every WAL segment in `dir` (WAL and WAL-<n>).
size_t TotalWalBytes(const std::string& dir) {
  size_t total = 0;
  for (uint64_t n = 0; n < 64; ++n) {
    total += ReadFile(dir + "/WAL-" + std::to_string(n)).size();
  }
  total += ReadFile(dir + "/WAL").size();
  return total;
}

DbOptions CrashDbOptions(const std::string& name) {
  DbOptions options;
  options.dir = "/tmp/proteus_wal_crash_" + name;
  options.memtable_bytes = 256 << 10;  // keep writes in the memtable
  options.sst_target_bytes = 64 << 10;
  options.block_size = 1024;
  options.l0_compaction_trigger = 3;
  options.l1_size_bytes = 128 << 10;
  options.filter_policy = MakeFilterPolicy("proteus:bpk=12");
  return options;
}

// ---------------------------------------------------------------------------
// WAL record framing and replay (no Db).
// ---------------------------------------------------------------------------

TEST(WalReplayUnit, RoundTripsEveryRecord) {
  const std::string path = "/tmp/proteus_wal_unit.log";
  ::unlink(path.c_str());
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  std::vector<std::pair<std::string, std::string>> written;
  for (int i = 0; i < 200; ++i) {
    std::string key = "key-" + std::to_string(i);
    std::string value(i % 17, 'v');
    written.emplace_back(key, value);
    ASSERT_TRUE(writer
                    .Append(EncodeWalRecord(kWalOpPutSeq,
                                            static_cast<uint64_t>(i) + 1, key,
                                            value),
                            1, /*sync=*/true)
                    .ok());
  }
  ASSERT_TRUE(writer
                  .Append(EncodeWalRecord(kWalOpDeleteSeq, 201, "key-5", {}),
                          1, true)
                  .ok());

  std::vector<std::pair<std::string, std::string>> replayed;
  uint8_t last_op = 0;
  uint64_t last_seqno = 0;
  uint64_t valid_bytes = 0;
  bool torn = false;
  ASSERT_TRUE(WalReplay(
                  path,
                  [&](uint8_t op, uint64_t seqno, std::string_view k,
                      std::string_view v) {
                    last_op = op;
                    last_seqno = seqno;
                    if (op == kWalOpPutSeq) replayed.emplace_back(k, v);
                  },
                  &valid_bytes, &torn)
                  .ok());
  EXPECT_FALSE(torn);
  EXPECT_EQ(valid_bytes, ReadFile(path).size());
  EXPECT_EQ(replayed, written);
  EXPECT_EQ(last_op, kWalOpDeleteSeq);
  EXPECT_EQ(last_seqno, 201u);
  ::unlink(path.c_str());
}

TEST(WalReplayUnit, EveryTruncationOffsetYieldsACleanPrefix) {
  const std::string path = "/tmp/proteus_wal_trunc.log";
  ::unlink(path.c_str());
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  std::vector<size_t> record_ends;  // clean boundaries in the file
  size_t bytes = 0;
  for (int i = 0; i < 40; ++i) {
    std::string record =
        EncodeWalRecord(kWalOpPutSeq, static_cast<uint64_t>(i) + 1,
                        "k" + std::to_string(i), std::string(i % 9, 'x'));
    bytes += record.size();
    record_ends.push_back(bytes);
    ASSERT_TRUE(writer.Append(record, 1, /*sync=*/false).ok());
  }
  const std::string full = ReadFile(path);
  ASSERT_EQ(full.size(), bytes);

  // Simulate a crash at EVERY byte offset: replay must apply exactly the
  // records wholly before the cut and flag everything after it as torn.
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    WriteFile(path, full.substr(0, cut));
    size_t whole_records = 0;
    while (whole_records < record_ends.size() &&
           record_ends[whole_records] <= cut) {
      ++whole_records;
    }
    size_t applied = 0;
    uint64_t valid_bytes = 0;
    bool torn = false;
    ASSERT_TRUE(WalReplay(
                    path,
                    [&](uint8_t, uint64_t, std::string_view,
                        std::string_view) { ++applied; },
                    &valid_bytes, &torn)
                    .ok())
        << "cut=" << cut;
    EXPECT_EQ(applied, whole_records) << "cut=" << cut;
    EXPECT_EQ(valid_bytes, whole_records == 0 ? 0 : record_ends[whole_records - 1])
        << "cut=" << cut;
    EXPECT_EQ(torn, cut != valid_bytes) << "cut=" << cut;
  }
  ::unlink(path.c_str());
}

TEST(WalReplayUnit, BitflippedRecordEndsTheIntelligiblePrefix) {
  const std::string path = "/tmp/proteus_wal_flip.log";
  ::unlink(path.c_str());
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer
                    .Append(EncodeWalRecord(kWalOpPutSeq,
                                            static_cast<uint64_t>(i) + 1,
                                            "key-" + std::to_string(i), "value"),
                            1, false)
                    .ok());
  }
  const std::string clean = ReadFile(path);
  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    std::string corrupt = clean;
    size_t pos = rng.NextBelow(corrupt.size());
    corrupt[pos] ^= static_cast<char>(1 + rng.NextBelow(255));
    WriteFile(path, corrupt);
    size_t applied = 0;
    uint64_t valid_bytes = 0;
    bool torn = false;
    // Replay stops at the first record that fails its CRC (or stops
    // framing); it never applies garbage and never crashes.
    ASSERT_TRUE(WalReplay(
                    path,
                    [&](uint8_t, uint64_t, std::string_view,
                        std::string_view) { ++applied; },
                    &valid_bytes, &torn)
                    .ok())
        << "trial " << trial;
    EXPECT_LE(applied, 10u);
    EXPECT_LE(valid_bytes, corrupt.size());
  }
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// Db-level: kill -9 at any WAL offset.
// ---------------------------------------------------------------------------

TEST(DbCrashRecovery, AcknowledgedWritesSurviveKillMinusNine) {
  auto options = CrashDbOptions("ack");
  std::map<uint64_t, std::string> acknowledged;
  {
    auto [db, st] = Db::Create(options);
    ASSERT_TRUE(st.ok());
    for (uint64_t i = 0; i < 800; ++i) {
      std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(db->Put(EncodeKeyBE(i * 3), value).ok());
      acknowledged[i * 3] = value;
    }
    ASSERT_TRUE(db->Delete(EncodeKeyBE(30)).ok());
    acknowledged.erase(30);
    db->TEST_CrashClose();  // no flush ever ran: everything lives in the WAL
  }
  auto [db, status] = Db::Open(options);
  ASSERT_NE(db, nullptr) << status.ToString();
  EXPECT_EQ(db->stats().wal_replayed, 801u);
  for (const auto& [k, v] : acknowledged) {
    SeekResult r = db->Seek(EncodeKeyBE(k), EncodeKeyBE(k));
    ASSERT_TRUE(r.found) << "lost acknowledged key " << k;
    EXPECT_EQ(r.value, v) << "key " << k;
  }
  EXPECT_FALSE(db->Seek(EncodeKeyBE(30), EncodeKeyBE(30)).found);
}

TEST(DbCrashRecovery, CrashAtAnyWalOffsetLosesNothingAcknowledged) {
  auto options = CrashDbOptions("offsets");
  options.filter_policy = nullptr;  // irrelevant here; keep the loop fast
  const uint64_t kKeys = 60;
  {
    auto [db, st] = Db::Create(options);
    ASSERT_TRUE(st.ok());
    for (uint64_t i = 0; i < kKeys; ++i) {
      ASSERT_TRUE(db->Put(EncodeKeyBE(i), "val-" + std::to_string(i)).ok());
    }
    db->TEST_CrashClose();
  }
  const std::string wal_path = options.dir + "/WAL-1";
  const std::string full = ReadFile(wal_path);
  ASSERT_FALSE(full.empty());

  // Each record is 8 (frame) + 1 (op) + 8 (seqno) + 4 + 8 (key) + 4 +
  // value bytes; recompute boundaries from the encoder so the test
  // cannot drift. Single-writer: seqnos are 1..kKeys in WAL order.
  std::vector<size_t> record_ends;
  {
    size_t bytes = 0;
    for (uint64_t i = 0; i < kKeys; ++i) {
      bytes += EncodeWalRecord(kWalOpPutSeq, i + 1, EncodeKeyBE(i),
                               "val-" + std::to_string(i))
                   .size();
      record_ends.push_back(bytes);
    }
    ASSERT_EQ(bytes, full.size());
  }

  Rng rng(123);
  std::vector<size_t> cuts = {0, 1, 7, 8, full.size() - 1, full.size()};
  for (int i = 0; i < 40; ++i) cuts.push_back(rng.NextBelow(full.size()));
  for (size_t cut : cuts) {
    WriteFile(wal_path, full.substr(0, cut));
    size_t whole = 0;
    while (whole < record_ends.size() && record_ends[whole] <= cut) ++whole;

    auto [db, status] = Db::Open(options);
    ASSERT_NE(db, nullptr) << "cut=" << cut << ": " << status.ToString();
    // A record wholly on disk was acknowledged at most at this offset's
    // crash point; everything before the cut MUST come back, the torn
    // record (never acknowledged) must NOT.
    EXPECT_EQ(db->stats().wal_replayed, whole) << "cut=" << cut;
    for (uint64_t k = 0; k < whole; ++k) {
      SeekResult r = db->Seek(EncodeKeyBE(k), EncodeKeyBE(k));
      ASSERT_TRUE(r.found) << "cut=" << cut << " lost key " << k;
      EXPECT_EQ(r.value, "val-" + std::to_string(k));
    }
    for (uint64_t k = whole; k < kKeys; ++k) {
      EXPECT_FALSE(db->Seek(EncodeKeyBE(k), EncodeKeyBE(k)).found)
          << "cut=" << cut << " resurrected torn key " << k;
    }
    db->TEST_CrashClose();  // leave the truncated WAL alone for the next cut
  }
}

TEST(DbCrashRecovery, ReplayedWritesFlushAndTheWalResets) {
  auto options = CrashDbOptions("replay_flush");
  {
    auto [db, st] = Db::Create(options);
    ASSERT_TRUE(st.ok());
    for (uint64_t i = 0; i < 300; ++i) {
      ASSERT_TRUE(db->Put(EncodeKeyBE(i * 2), "x" + std::to_string(i)).ok());
    }
    db->TEST_CrashClose();
  }
  {
    auto [db, status] = Db::Open(options);
    ASSERT_NE(db, nullptr) << status.ToString();
    EXPECT_EQ(db->stats().wal_replayed, 300u);
    ASSERT_TRUE(db->Flush().ok());
    // The flush made the replayed writes durable in SSTs; the replayed
    // segment was rotated out and deleted — no WAL bytes remain (the
    // fresh active segment is empty until the next write).
    EXPECT_EQ(TotalWalBytes(options.dir), 0u);
  }
  auto [db, status] = Db::Open(options);
  ASSERT_NE(db, nullptr) << status.ToString();
  EXPECT_EQ(db->stats().wal_replayed, 0u);
  EXPECT_EQ(db->TotalKeys(), 300u);
}

TEST(DbCrashRecovery, GroupCommitBatchesConcurrentWriters) {
  auto options = CrashDbOptions("group");
  options.filter_policy = nullptr;
  auto [db, st] = Db::Create(options);
  ASSERT_TRUE(st.ok());
  ASSERT_NE(db->TEST_wal(), nullptr);
  // Slow each fsync so concurrent committers pile up behind the leader.
  db->TEST_wal()->TEST_SetSyncDelayMicros(300);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db = *db, t] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t k = static_cast<uint64_t>(t) * 1000 + static_cast<uint64_t>(i);
        ASSERT_TRUE(db.Put(EncodeKeyBE(k), "t" + std::to_string(k)).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  const WalWriter::Stats stats = db->wal_stats();
  EXPECT_EQ(stats.records, static_cast<uint64_t>(kThreads * kPerThread));
  // The whole point of group commit: far fewer fsyncs than records.
  EXPECT_LT(stats.syncs, stats.records);
  EXPECT_EQ(stats.syncs, stats.batches);

  // Every concurrent write is present and survives a crash.
  db->TEST_CrashClose();
  auto [reopened, status] = Db::Open(options);
  ASSERT_NE(reopened, nullptr) << status.ToString();
  EXPECT_EQ(reopened->stats().wal_replayed,
            static_cast<uint64_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      uint64_t k = static_cast<uint64_t>(t) * 1000 + static_cast<uint64_t>(i);
      ASSERT_TRUE(reopened->Seek(EncodeKeyBE(k), EncodeKeyBE(k)).found)
          << "lost key " << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Data-block corruption: non-OK Status, not a wrong answer.
// ---------------------------------------------------------------------------

TEST(DbCrashRecovery, FlippedDataBlockByteSurfacesAsCorruptionStatus) {
  auto options = CrashDbOptions("block_flip");
  {
    auto [db, st] = Db::Create(options);
    ASSERT_TRUE(st.ok());
    for (uint64_t i = 0; i < 3000; ++i) {
      ASSERT_TRUE(
          db->Put(EncodeKeyBE(i * 4), "blk" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(db->CompactAll().ok());
  }
  {
    auto [db, status] = Db::Open(options);
    ASSERT_NE(db, nullptr) << status.ToString();
    ASSERT_TRUE(db->VerifyChecksums().ok());
  }

  // Flip one byte in the first data block of some SST (offset 16 is
  // comfortably inside block 0's payload, before index and footer).
  std::string victim;
  for (uint64_t id = 1; id < 128 && victim.empty(); ++id) {
    std::string path = options.dir + "/" + std::to_string(id) + ".sst";
    if (::access(path.c_str(), F_OK) == 0) victim = path;
  }
  ASSERT_FALSE(victim.empty());
  std::string content = ReadFile(victim);
  content[16] ^= 0x20;
  WriteFile(victim, content);

  auto [reopened, status2] = Db::Open(options);
  ASSERT_NE(reopened, nullptr) << status2.ToString();
  Status verify = reopened->VerifyChecksums();
  EXPECT_FALSE(verify.ok());
  EXPECT_TRUE(verify.IsCorruption()) << verify.ToString();

  // Seeks over the damaged region surface the Corruption through the
  // status out-param (and stats) and never return a silently wrong
  // value.
  reopened->ResetStats();
  size_t corrupt_seeks = 0;
  for (uint64_t i = 0; i < 3000; i += 11) {
    SeekResult r = reopened->Seek(EncodeKeyBE(i * 4), EncodeKeyBE(i * 4));
    if (r.found) {
      EXPECT_EQ(r.value, "blk" + std::to_string(i)) << "silent corruption";
    }
    if (!r.status.ok()) {
      EXPECT_TRUE(r.status.IsCorruption()) << r.status.ToString();
      ++corrupt_seeks;
    }
  }
  EXPECT_GT(corrupt_seeks, 0u);
  EXPECT_GT(reopened->stats().read_errors, 0u);
}

// ---------------------------------------------------------------------------
// MANIFEST delta log: torn tail recovered via the WAL; damage is loud.
// ---------------------------------------------------------------------------

TEST(DbCrashRecovery, TornManifestDeltaIsCoveredByTheWal) {
  auto options = CrashDbOptions("manifest_torn");
  options.manifest_compact_threshold = 1000;  // keep every delta in the log
  const std::string manifest = options.dir + "/MANIFEST";
  // Deterministic single-threaded schedule: the first flush rotates
  // WAL-1 out, so generation 2 lands in segment WAL-2.
  const std::string wal_path = options.dir + "/WAL-2";
  std::string wal_before_flush;
  size_t manifest_before_flush = 0;
  {
    auto [db, st] = Db::Create(options);
    ASSERT_TRUE(st.ok());
    // Generation 1: flushed and durable via the manifest snapshot.
    for (uint64_t i = 0; i < 500; ++i) {
      ASSERT_TRUE(db->Put(EncodeKeyBE(i), "gen1").ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    manifest_before_flush = ReadFile(manifest).size();
    // Generation 2: acknowledged into the WAL, then flushed (appending a
    // delta record and retiring the segment).
    for (uint64_t i = 500; i < 900; ++i) {
      ASSERT_TRUE(db->Put(EncodeKeyBE(i), "gen2").ok());
    }
    wal_before_flush = ReadFile(wal_path);
    ASSERT_TRUE(db->Flush().ok());
    db->TEST_CrashClose();
  }
  // Simulate the crash landing mid-flush: the delta record was torn in
  // the middle of its append and the WAL reset never happened.
  std::string content = ReadFile(manifest);
  ASSERT_GT(content.size(), manifest_before_flush);
  const size_t torn_size =
      manifest_before_flush + (content.size() - manifest_before_flush) / 2;
  WriteFile(manifest, content.substr(0, torn_size));
  ASSERT_FALSE(wal_before_flush.empty());
  WriteFile(wal_path, wal_before_flush);

  auto [db, status] = Db::Open(options);
  ASSERT_NE(db, nullptr) << status.ToString();
  // The torn delta was dropped; the WAL replay brings generation 2 back.
  EXPECT_GT(db->stats().wal_replayed, 0u);
  for (uint64_t i = 0; i < 900; ++i) {
    ASSERT_TRUE(db->Seek(EncodeKeyBE(i), EncodeKeyBE(i)).found)
        << "lost key " << i;
  }
}

TEST(DbCrashRecovery, CorruptedCompleteDeltaRecordFailsOpenLoudly) {
  auto options = CrashDbOptions("manifest_delta_flip");
  options.manifest_compact_threshold = 1000;
  const std::string manifest = options.dir + "/MANIFEST";
  size_t snapshot_size = 0;
  {
    auto [db, st] = Db::Create(options);
    ASSERT_TRUE(st.ok());
    for (uint64_t i = 0; i < 400; ++i) {
      ASSERT_TRUE(db->Put(EncodeKeyBE(i), "a").ok());
    }
    ASSERT_TRUE(db->Flush().ok());  // snapshot (first manifest write)
    snapshot_size = ReadFile(manifest).size();
    for (uint64_t i = 400; i < 800; ++i) {
      ASSERT_TRUE(db->Put(EncodeKeyBE(i), "b").ok());
    }
    ASSERT_TRUE(db->Flush().ok());  // appends a delta record
    for (uint64_t i = 800; i < 1200; ++i) {
      ASSERT_TRUE(db->Put(EncodeKeyBE(i), "c").ok());
    }
    ASSERT_TRUE(db->Flush().ok());  // a second delta: the first is now
    db->TEST_CrashClose();          // unambiguously mid-log
  }
  std::string content = ReadFile(manifest);
  ASSERT_GT(content.size(), snapshot_size + 16);
  // Flip a byte inside the FIRST delta record's payload — a complete
  // mid-log frame. That is damage (history rewritten), not a torn
  // append, and recovery must refuse rather than guess.
  std::string corrupt = content;
  corrupt[snapshot_size + 12] ^= 0x01;
  WriteFile(manifest, corrupt);

  {
    auto [db, status] = Db::Open(options);
    EXPECT_EQ(db, nullptr);
    EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  }

  // Restoring the bytes restores the database.
  WriteFile(manifest, content);
  auto [db, status] = Db::Open(options);
  ASSERT_NE(db, nullptr) << status.ToString();
  EXPECT_EQ(db->TotalKeys(), 1200u);
}

TEST(DbCrashRecovery, ManifestDeltaLogCompactsBackToOneSnapshot) {
  auto options = CrashDbOptions("manifest_compact");
  options.manifest_compact_threshold = 4;
  {
    auto [db, st] = Db::Create(options);
    ASSERT_TRUE(st.ok());
    for (int gen = 0; gen < 12; ++gen) {
      for (uint64_t i = 0; i < 64; ++i) {
        ASSERT_TRUE(
            db->Put(EncodeKeyBE(static_cast<uint64_t>(gen) * 1000 + i), "g")
                .ok());
      }
      ASSERT_TRUE(db->Flush().ok());
    }
    // 12 flushes with a threshold of 4: the log was folded into a fresh
    // snapshot at least twice, and deltas were appended in between.
    EXPECT_GT(db->stats().manifest_snapshots, 1u);
    EXPECT_GT(db->stats().manifest_deltas, 0u);
  }
  auto [db, status] = Db::Open(options);
  ASSERT_NE(db, nullptr) << status.ToString();
  EXPECT_EQ(db->TotalKeys(), 12u * 64u);
}

TEST(DbCrashRecovery, WalFromPreviousRunHonoredThenRemovedWhenWalDisabled) {
  auto options = CrashDbOptions("stale_wal");
  {
    // Session 1 (WAL on): acknowledged writes, then kill -9.
    auto [db, st] = Db::Create(options);
    ASSERT_TRUE(st.ok());
    for (uint64_t i = 0; i < 120; ++i) {
      ASSERT_TRUE(db->Put(EncodeKeyBE(i), "s1").ok());
    }
    db->TEST_CrashClose();
  }
  ASSERT_GT(TotalWalBytes(options.dir), 0u);

  // Session 2 opens with use_wal=false: the old log's acknowledged
  // writes must still be honored (replayed), and the file removed so it
  // can never replay stale history over this session's newer state.
  options.use_wal = false;
  {
    auto [db, status] = Db::Open(options);
    ASSERT_NE(db, nullptr) << status.ToString();
    EXPECT_EQ(db->stats().wal_replayed, 120u);
    EXPECT_EQ(db->TotalKeys(), 120u);
    EXPECT_EQ(TotalWalBytes(options.dir), 0u);  // segments gone
    ASSERT_TRUE(db->Delete(EncodeKeyBE(5)).ok());
    ASSERT_TRUE(db->Flush().ok());
  }

  // Session 3 (WAL back on): the deleted key must NOT resurrect from
  // the session-1 log.
  options.use_wal = true;
  auto [db, status] = Db::Open(options);
  ASSERT_NE(db, nullptr) << status.ToString();
  EXPECT_EQ(db->stats().wal_replayed, 0u);
  EXPECT_FALSE(db->Seek(EncodeKeyBE(5), EncodeKeyBE(5)).found);
  EXPECT_TRUE(db->Seek(EncodeKeyBE(6), EncodeKeyBE(6)).found);
}

TEST(DbCrashRecovery, WalDisabledKeepsTheOldContract) {
  auto options = CrashDbOptions("no_wal");
  options.use_wal = false;
  {
    auto [db, st] = Db::Create(options);
    ASSERT_TRUE(st.ok());
    for (uint64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(db->Put(EncodeKeyBE(i), "x").ok());
    }
    EXPECT_EQ(db->wal_stats().records, 0u);
    db->TEST_CrashClose();  // kill -9 without a WAL: the memtable is gone
  }
  auto [db, status] = Db::Open(options);
  ASSERT_NE(db, nullptr) << status.ToString();
  EXPECT_EQ(db->TotalKeys(), 0u);  // documented regression of use_wal=false
}

}  // namespace
}  // namespace proteus
