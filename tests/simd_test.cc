// Differential tests for the SIMD batch-probe engine: every AVX2 kernel
// must agree bit-for-bit with its scalar fallback and with the per-query
// reference path, across batch sizes that are not lane multiples (n = 0,
// 1, 7, 9, 65, ...) and across every filter family's MultiMayContain.
// Also pins the serialized format: batching is query-side only, so
// blocked and standard filter blobs must round-trip bit-identically.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/bloom_range.h"
#include "core/filter.h"
#include "core/one_pbf.h"
#include "core/proteus.h"
#include "core/proteus_str.h"
#include "core/two_pbf.h"
#include "rosetta/rosetta.h"
#include "trie/bit_trie.h"
#include "util/bit_vector.h"
#include "util/random.h"
#include "util/rank_select.h"
#include "util/simd.h"
#include "workload/string_gen.h"

namespace proteus {
namespace {

/// Scoped force-scalar override; restores the previous mode on exit.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool on) : prev_(SetForceScalar(on)) {}
  ~ScopedForceScalar() { SetForceScalar(prev_); }

 private:
  bool prev_;
};

const std::vector<size_t> kBatchSizes = {0, 1, 7, 8, 9, 63, 64, 65, 200};

TEST(SimdDispatch, ForceScalarSwitchRoundTrips) {
  const bool prev = SetForceScalar(true);
  EXPECT_FALSE(SimdAvx2Enabled());
  EXPECT_TRUE(SetForceScalar(false));  // returns the previous value
  EXPECT_EQ(SimdAvx2Enabled(), CpuHasAvx2());
  SetForceScalar(prev);
}

TEST(BloomMultiContainHash, MatchesScalarAndSingleProbe) {
  Rng rng(101);
  for (bool blocked : {true, false}) {
    BloomFilter bf(97013, 7, blocked);
    for (int i = 0; i < 8000; ++i) bf.InsertInt(rng.Next() % 20000);
    for (size_t n : kBatchSizes) {
      std::vector<uint64_t> h1(n), h2(n);
      for (size_t i = 0; i < n; ++i) {
        BloomFilter::HashInt(rng.Next() % 40000, &h1[i], &h2[i]);
      }
      std::vector<uint8_t> scalar(n, 9), simd(n, 9);
      {
        ScopedForceScalar fs(true);
        bf.MultiContainHash(h1.data(), h2.data(), n, scalar.data());
      }
      {
        ScopedForceScalar fs(false);
        bf.MultiContainHash(h1.data(), h2.data(), n, simd.data());
      }
      for (size_t i = 0; i < n; ++i) {
        const uint8_t ref = bf.MayContainHash(h1[i], h2[i]) ? 1 : 0;
        ASSERT_EQ(scalar[i], ref) << "blocked=" << blocked << " n=" << n
                                  << " i=" << i;
        ASSERT_EQ(simd[i], ref) << "blocked=" << blocked << " n=" << n
                                << " i=" << i;
      }
    }
  }
}

TEST(MultiRank1, MatchesRank1IncludingBoundary) {
  Rng rng(102);
  // Sizes hit: sub-word, exact word multiples (pos == size lands on a
  // word boundary, where the data-word gather must be suppressed), and a
  // multi-block vector.
  for (uint64_t size : {uint64_t{1}, uint64_t{64}, uint64_t{512},
                        uint64_t{1000}, uint64_t{4096}, uint64_t{70001}}) {
    BitVector bv(size);
    for (uint64_t i = 0; i < size; ++i) {
      if (rng.NextBelow(2) != 0) bv.Set(i);
    }
    RankSelect rs(&bv);
    for (size_t n : kBatchSizes) {
      std::vector<uint64_t> pos(n);
      for (size_t i = 0; i < n; ++i) pos[i] = rng.NextBelow(size + 1);
      if (n > 0) pos[0] = size;  // one-past-the-end is a legal rank query
      std::vector<uint64_t> scalar(n), simd(n);
      {
        ScopedForceScalar fs(true);
        rs.MultiRank1(pos.data(), n, scalar.data());
      }
      {
        ScopedForceScalar fs(false);
        rs.MultiRank1(pos.data(), n, simd.data());
      }
      for (size_t i = 0; i < n; ++i) {
        const uint64_t ref = rs.Rank1(pos[i]);
        ASSERT_EQ(scalar[i], ref) << "size=" << size << " pos=" << pos[i];
        ASSERT_EQ(simd[i], ref) << "size=" << size << " pos=" << pos[i];
      }
    }
  }
}

// Clustered keys and mixed-width ranges so batched walks see genuine trie
// hits, coarse-filter positives, and empty regions.
std::vector<uint64_t> TestKeys(uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(30000);
  for (int i = 0; i < 30000; ++i) {
    keys.push_back((rng.Next() % 1500000) << 8 | rng.NextBelow(256));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

void TestQueries(uint64_t seed, size_t n, std::vector<uint64_t>* lo,
                 std::vector<uint64_t>* hi) {
  Rng rng(seed);
  lo->resize(n);
  hi->resize(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t l = rng.Next() % (uint64_t{1500000} << 8);
    uint64_t span = (i % 7 == 0) ? rng.Next() % 100000 : rng.NextBelow(256);
    if (i % 31 == 0) {  // occasional far-out / enormous range
      l = rng.Next();
      span = rng.Next() % 100000;
    }
    (*lo)[i] = l;
    (*hi)[i] = l + span < l ? ~uint64_t{0} : l + span;
  }
}

void ExpectBatchMatchesSingle(const RangeFilter& filter,
                              const std::vector<uint64_t>& lo,
                              const std::vector<uint64_t>& hi) {
  for (size_t n : kBatchSizes) {
    ASSERT_LE(n, lo.size());
    std::vector<uint8_t> scalar(n, 9), simd(n, 9);
    {
      ScopedForceScalar fs(true);
      filter.MultiMayContain(lo.data(), hi.data(), n, scalar.data());
    }
    {
      ScopedForceScalar fs(false);
      filter.MultiMayContain(lo.data(), hi.data(), n, simd.data());
    }
    for (size_t i = 0; i < n; ++i) {
      const uint8_t ref = filter.MayContain(lo[i], hi[i]) ? 1 : 0;
      ASSERT_EQ(scalar[i], ref)
          << filter.Name() << " n=" << n << " i=" << i;
      ASSERT_EQ(simd[i], ref)
          << filter.Name() << " n=" << n << " i=" << i;
    }
  }
}

TEST(MultiMayContain, AllIntFamiliesMatchSingleQuery) {
  auto keys = TestKeys(103);
  std::vector<uint64_t> lo, hi;
  TestQueries(104, 200, &lo, &hi);
  for (bool blocked : {true, false}) {
    SCOPED_TRACE(blocked ? "blocked" : "standard");
    ExpectBatchMatchesSingle(
        *ProteusFilter::BuildWithConfig(keys, {24, 44}, 14.0, blocked), lo,
        hi);
    ExpectBatchMatchesSingle(
        *ProteusFilter::BuildWithConfig(keys, {0, 48}, 14.0, blocked), lo,
        hi);
    ExpectBatchMatchesSingle(
        *ProteusFilter::BuildWithConfig(keys, {20, 0}, 14.0, blocked), lo,
        hi);
    ExpectBatchMatchesSingle(
        *OnePbfFilter::BuildWithConfig(keys, 48, 14.0, blocked), lo, hi);
    ExpectBatchMatchesSingle(
        *TwoPbfFilter::BuildWithConfig(keys, {20, 44, 0.4}, 14.0, blocked),
        lo, hi);
    ExpectBatchMatchesSingle(
        *TwoPbfFilter::BuildWithConfig(keys, {0, 48, 0.5}, 14.0, blocked),
        lo, hi);
    ExpectBatchMatchesSingle(
        *RosettaFilter::BuildSelfConfigured(keys, {}, 14.0, blocked), lo,
        hi);
    ExpectBatchMatchesSingle(*BloomIntFilter::Build(keys, 14.0, blocked),
                             lo, hi);
  }
}

TEST(MultiMayContain, StrBloomMatchesSingleQuery) {
  auto keys = GenerateStrKeys(StrDataset::kUniform, 20000, 12, 105);
  for (bool blocked : {true, false}) {
    auto filter = BloomStrFilter::Build(keys, 14.0, blocked);
    Rng rng(106);
    const size_t total = 200;
    std::vector<std::string> storage(total);
    std::vector<std::string_view> lo(total), hi(total);
    for (size_t i = 0; i < total; ++i) {
      storage[i] = i % 3 == 0 ? keys[rng.Next() % keys.size()]
                              : GenerateStrKeys(StrDataset::kUniform, 1, 12,
                                                rng.Next())[0];
      lo[i] = storage[i];
      hi[i] = storage[i];
    }
    for (size_t n : kBatchSizes) {
      std::vector<uint8_t> scalar(n, 9), simd(n, 9);
      {
        ScopedForceScalar fs(true);
        filter->MultiMayContain(lo.data(), hi.data(), n, scalar.data());
      }
      {
        ScopedForceScalar fs(false);
        filter->MultiMayContain(lo.data(), hi.data(), n, simd.data());
      }
      for (size_t i = 0; i < n; ++i) {
        const uint8_t ref = filter->MayContain(lo[i], hi[i]) ? 1 : 0;
        ASSERT_EQ(scalar[i], ref) << "blocked=" << blocked << " i=" << i;
        ASSERT_EQ(simd[i], ref) << "blocked=" << blocked << " i=" << i;
      }
    }
  }
}

TEST(MultiMayContain, StrProteusScalarAndSimdAgree) {
  // ProteusStr has no batch override, but its StrPrefixBloom range walk
  // takes the chunked multi-probe path internally — the two modes must
  // agree query by query.
  auto keys = GenerateStrKeys(StrDataset::kUniform, 20000, 12, 107);
  auto filter = ProteusStrFilter::BuildWithConfig(
      keys, ProteusStrFilter::Config{40, 72, 96}, 14.0, true);
  Rng rng(108);
  for (int i = 0; i < 300; ++i) {
    std::string l = i % 3 == 0
                        ? keys[rng.Next() % keys.size()]
                        : GenerateStrKeys(StrDataset::kUniform, 1, 12,
                                          rng.Next())[0];
    std::string h;
    if (!StrAddDelta(l, 12, rng.NextBelow(1 << 12), &h)) h = l;
    bool scalar, simd;
    {
      ScopedForceScalar fs(true);
      scalar = filter->MayContain(l, h);
    }
    {
      ScopedForceScalar fs(false);
      simd = filter->MayContain(l, h);
    }
    ASSERT_EQ(scalar, simd) << "i=" << i;
  }
}

TEST(MultiSeekGeq, MatchesSeekGeqAndSupportsNext) {
  auto keys = TestKeys(109);
  for (uint32_t depth : {uint32_t{12}, uint32_t{30}, uint32_t{64}}) {
    BitTrie trie;
    trie.Build(UniquePrefixes(keys, depth), depth);
    Rng rng(110 + depth);
    const uint64_t mask =
        depth == 64 ? ~uint64_t{0} : (uint64_t{1} << depth) - 1;
    for (bool force : {true, false}) {
      ScopedForceScalar fs(force);
      const size_t n = 150;
      std::vector<uint64_t> targets(n);
      for (size_t i = 0; i < n; ++i) targets[i] = rng.Next() & mask;
      targets[0] = 0;
      targets[1] = mask;  // past the largest stored value with high odds
      std::vector<BitTrie::Cursor> cursors;
      cursors.reserve(n);
      for (size_t i = 0; i < n; ++i) cursors.emplace_back(&trie);
      trie.MultiSeekGeq(targets.data(), n, cursors.data());
      for (size_t i = 0; i < n; ++i) {
        BitTrie::Cursor ref(&trie);
        bool ref_ok = ref.SeekGeq(targets[i]);
        ASSERT_EQ(cursors[i].valid(), ref_ok) << "depth=" << depth;
        // The batch-seeked cursor must be a full-fledged cursor: value
        // and several Next() steps agree with the scalar-seeked one.
        for (int step = 0; ref_ok && step < 10; ++step) {
          ASSERT_EQ(cursors[i].value(), ref.value())
              << "depth=" << depth << " step=" << step;
          const bool a = cursors[i].Next();
          ref_ok = ref.Next();
          ASSERT_EQ(a, ref_ok) << "depth=" << depth << " step=" << step;
        }
      }
    }
  }
  // Empty trie: every cursor comes back invalid.
  BitTrie empty;
  empty.Build({}, 16);
  uint64_t t = 3;
  BitTrie::Cursor cur(&empty);
  empty.MultiSeekGeq(&t, 1, &cur);
  EXPECT_FALSE(cur.valid());
}

TEST(SerializedFormat, BlockedAndStandardBlobsRoundTripBitIdentically) {
  // The SIMD engine is query-side only: serialize -> parse -> serialize
  // must reproduce the exact bytes for both probe layouts, and the
  // revived filter must answer identically.
  auto keys = TestKeys(111);
  std::vector<uint64_t> lo, hi;
  TestQueries(112, 64, &lo, &hi);
  for (bool blocked : {true, false}) {
    std::vector<std::unique_ptr<Filter>> filters;
    filters.push_back(
        ProteusFilter::BuildWithConfig(keys, {24, 44}, 14.0, blocked));
    filters.push_back(
        TwoPbfFilter::BuildWithConfig(keys, {20, 44, 0.4}, 14.0, blocked));
    filters.push_back(OnePbfFilter::BuildWithConfig(keys, 48, 14.0, blocked));
    filters.push_back(RosettaFilter::BuildSelfConfigured(keys, {}, 14.0,
                                                         blocked));
    filters.push_back(BloomIntFilter::Build(keys, 14.0, blocked));
    for (const auto& filter : filters) {
      std::string blob;
      filter->Serialize(&blob);
      std::string error;
      auto revived = Filter::Deserialize(blob, &error);
      ASSERT_NE(revived, nullptr) << filter->Name() << ": " << error;
      std::string blob2;
      revived->Serialize(&blob2);
      EXPECT_EQ(blob, blob2) << filter->Name() << " blocked=" << blocked;
      const auto* rf = dynamic_cast<const RangeFilter*>(revived.get());
      ASSERT_NE(rf, nullptr);
      const auto* orig = dynamic_cast<const RangeFilter*>(filter.get());
      std::vector<uint8_t> got(lo.size());
      rf->MultiMayContain(lo.data(), hi.data(), lo.size(), got.data());
      for (size_t i = 0; i < lo.size(); ++i) {
        ASSERT_EQ(got[i] != 0, orig->MayContain(lo[i], hi[i]))
            << filter->Name() << " i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace proteus
