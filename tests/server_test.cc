// BatchServer smoke tests: concurrent loopback connections round-trip
// MultiSeek batches through the wire protocol and match direct Seek
// results; protocol errors get an error frame and a closed connection.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "engine/server.h"
#include "engine/wire.h"
#include "lsm/db.h"
#include "surf/surf.h"
#include "util/random.h"
#include "util/serial.h"

namespace proteus {
namespace {

int ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t w = ::write(fd, data.data(), data.size());
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(w));
  }
  return true;
}

bool RecvFrame(int fd, std::string* payload) {
  char header[4];
  size_t got = 0;
  while (got < 4) {
    ssize_t r = ::read(fd, header + got, 4 - got);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    got += static_cast<size_t>(r);
  }
  const uint32_t length = LoadFixed32(header);
  if (length > kWireMaxFrameBytes) return false;
  payload->resize(length);
  size_t off = 0;
  while (off < length) {
    ssize_t r = ::read(fd, payload->data() + off, length - off);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(r);
  }
  return true;
}

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(const std::string& scheduler = "sorted") {
    DbOptions options;
    options.dir = "/tmp/proteus_server_test";
    options.memtable_bytes = 64 << 10;
    options.sst_target_bytes = 128 << 10;
    options.block_size = 1024;
    options.filter_policy = MakeProteusIntPolicy(14.0);
    auto [db, create_status] = Db::Create(options);
    ASSERT_TRUE(create_status.ok()) << create_status.ToString();
    db_ = std::move(db);
    Rng rng(31);
    for (int op = 0; op < 8000; ++op) {
      uint64_t k = rng.NextBelow(4000) * 1000;
      ASSERT_TRUE(
          db_->Put(EncodeKeyBE(k), "v" + std::to_string(op)).ok());
    }
    ASSERT_TRUE(db_->CompactAll().ok());

    ServerOptions server_options;
    server_options.port = 0;  // ephemeral
    server_options.scheduler = scheduler;
    server_ = std::make_unique<BatchServer>(db_.get(), server_options);
    Status status = server_->Start();
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_NE(server_->port(), 0);
    serve_thread_ = std::thread([this] { serve_status_ = server_->Serve(); });
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
      if (serve_thread_.joinable()) serve_thread_.join();
      EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
    }
  }

  std::unique_ptr<Db> db_;
  std::unique_ptr<BatchServer> server_;
  std::thread serve_thread_;
  Status serve_status_;
};

TEST_F(ServerTest, PingPong) {
  StartServer();
  int fd = ConnectLoopback(server_->port());
  ASSERT_GE(fd, 0);
  std::string request, payload;
  WireEncodePingRequest(&request);
  ASSERT_TRUE(SendAll(fd, request));
  ASSERT_TRUE(RecvFrame(fd, &payload));
  EXPECT_EQ(WirePeekOp(payload), kWireOpPong);
  ::close(fd);
}

TEST_F(ServerTest, EightConcurrentConnectionsMatchDirectSeek) {
  StartServer("grouped");
  constexpr int kConnections = 8;
  constexpr int kBatchesPerConnection = 12;
  constexpr size_t kBatchSize = 48;
  std::atomic<int> failures{0};
  std::vector<std::vector<QueryBatch>> plans(kConnections);
  for (int c = 0; c < kConnections; ++c) {
    Rng rng(100 + c);
    for (int b = 0; b < kBatchesPerConnection; ++b) {
      QueryBatch batch;
      for (size_t i = 0; i < kBatchSize; ++i) {
        uint64_t k = rng.NextBelow(4000) * 1000;
        uint64_t span = rng.NextBelow(5000);
        batch.push_back({EncodeKeyBE(k > span ? k - span : 0),
                         EncodeKeyBE(k + span)});
      }
      plans[c].push_back(std::move(batch));
    }
  }

  // All clients hold their connections open concurrently and stream
  // batches; the single-threaded server interleaves them.
  std::vector<std::vector<std::vector<MultiSeekResult>>> replies(kConnections);
  std::vector<std::thread> clients;
  for (int c = 0; c < kConnections; ++c) {
    clients.emplace_back([&, c] {
      int fd = ConnectLoopback(server_->port());
      if (fd < 0) {
        ++failures;
        return;
      }
      for (const QueryBatch& batch : plans[c]) {
        std::string request, payload;
        WireEncodeMultiSeekRequest(batch, &request);
        std::vector<MultiSeekResult> results;
        if (!SendAll(fd, request) || !RecvFrame(fd, &payload) ||
            !WireDecodeResultsResponse(payload, &results) ||
            results.size() != batch.size()) {
          ++failures;
          break;
        }
        replies[c].push_back(std::move(results));
      }
      ::close(fd);
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Serving is done; verify every reply against direct Seek on the DB.
  for (int c = 0; c < kConnections; ++c) {
    ASSERT_EQ(replies[c].size(), plans[c].size()) << "connection " << c;
    for (size_t b = 0; b < plans[c].size(); ++b) {
      for (size_t i = 0; i < plans[c][b].size(); ++i) {
        SeekResult direct = db_->Seek(plans[c][b][i].lo, plans[c][b][i].hi);
        const MultiSeekResult& r = replies[c][b][i];
        ASSERT_EQ(r.found, direct.found) << "conn " << c << " batch " << b;
        if (direct.found) {
          ASSERT_EQ(r.key, direct.key);
          ASSERT_EQ(r.value, direct.value);
        }
      }
    }
  }
  EXPECT_GE(server_->stats().connections_accepted,
            static_cast<uint64_t>(kConnections));
  EXPECT_EQ(server_->stats().queries_served,
            static_cast<uint64_t>(kConnections) * kBatchesPerConnection *
                kBatchSize);
  EXPECT_EQ(server_->stats().protocol_errors, 0u);
}

TEST_F(ServerTest, MalformedFrameGetsErrorAndClose) {
  StartServer();
  int fd = ConnectLoopback(server_->port());
  ASSERT_GE(fd, 0);
  // A framed payload with an unknown op.
  std::string request, payload;
  WireAppendFrame(&request, "\xAB bogus");
  ASSERT_TRUE(SendAll(fd, request));
  ASSERT_TRUE(RecvFrame(fd, &payload));
  EXPECT_EQ(WirePeekOp(payload), kWireOpError);
  // The server closes after the error frame.
  char byte;
  EXPECT_EQ(::read(fd, &byte, 1), 0);
  ::close(fd);

  // An oversized frame length is rejected without buffering 16 MiB.
  fd = ConnectLoopback(server_->port());
  ASSERT_GE(fd, 0);
  std::string huge;
  PutFixed32(&huge, kWireMaxFrameBytes + 1);
  ASSERT_TRUE(SendAll(fd, huge));
  ASSERT_TRUE(RecvFrame(fd, &payload));
  EXPECT_EQ(WirePeekOp(payload), kWireOpError);
  EXPECT_EQ(::read(fd, &byte, 1), 0);
  ::close(fd);
}

}  // namespace
}  // namespace proteus
