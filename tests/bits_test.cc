// Unit tests for util/bits.h and util/bitstring.h.

#include <gtest/gtest.h>

#include <string>

#include "util/bits.h"
#include "util/bitstring.h"
#include "util/random.h"

namespace proteus {
namespace {

TEST(Bits, PopCount) {
  EXPECT_EQ(PopCount64(0), 0);
  EXPECT_EQ(PopCount64(~uint64_t{0}), 64);
  EXPECT_EQ(PopCount64(0xF0F0), 8);
}

TEST(Bits, Select64Basic) {
  EXPECT_EQ(Select64(0b1, 1), 0);
  EXPECT_EQ(Select64(0b10, 1), 1);
  EXPECT_EQ(Select64(0b1010, 2), 3);
  EXPECT_EQ(Select64(~uint64_t{0}, 64), 63);
  EXPECT_EQ(Select64(uint64_t{1} << 63, 1), 63);
}

TEST(Bits, Select64MatchesScan) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    uint64_t w = rng.Next();
    int ones = PopCount64(w);
    int seen = 0;
    for (int bit = 0; bit < 64; ++bit) {
      if ((w >> bit) & 1) {
        ++seen;
        ASSERT_EQ(Select64(w, seen), bit) << "word=" << w << " r=" << seen;
      }
    }
    ASSERT_EQ(seen, ones);
  }
}

TEST(Bits, Select64DispatchAgreesWithPortable) {
  // Whatever path the runtime dispatch picked (PDEP on BMI2 hardware,
  // byte scan elsewhere), it must agree with the portable oracle for
  // every word and every valid rank.
  Rng rng(271828);
  for (int trial = 0; trial < 500; ++trial) {
    uint64_t w = rng.Next();
    if (trial < 4) w = (trial & 1) ? ~uint64_t{0} : uint64_t{1} << (trial * 21);
    int ones = PopCount64(w);
    for (int r = 1; r <= ones; ++r) {
      ASSERT_EQ(Select64(w, r), Select64Portable(w, r))
          << "word=" << w << " r=" << r;
    }
  }
#if PROTEUS_SELECT64_HAVE_PDEP
  if (CpuHasBmi2()) {
    // Exercise the PDEP body directly (dispatch may hide it otherwise).
    Rng rng2(31415);
    for (int trial = 0; trial < 200; ++trial) {
      uint64_t w = rng2.Next() | 1;
      int ones = PopCount64(w);
      for (int r = 1; r <= ones; r += 7) {
        ASSERT_EQ(Select64Pdep(w, r), Select64Portable(w, r));
      }
    }
  }
#endif
}

TEST(Bits, LcpBits64) {
  EXPECT_EQ(LcpBits64(0, 0), 64u);
  EXPECT_EQ(LcpBits64(0, 1), 63u);
  EXPECT_EQ(LcpBits64(0, ~uint64_t{0}), 0u);
  EXPECT_EQ(LcpBits64(uint64_t{0xFF} << 56, uint64_t{0xFE} << 56), 7u);
}

TEST(Bits, PrefixBits64) {
  uint64_t k = 0xDEADBEEF12345678ull;
  EXPECT_EQ(PrefixBits64(k, 0), 0u);
  EXPECT_EQ(PrefixBits64(k, 64), k);
  EXPECT_EQ(PrefixBits64(k, 8), 0xDEu);
  EXPECT_EQ(PrefixBits64(k, 4), 0xDu);
}

TEST(Bits, PrefixCountInRange) {
  // [4, 8] over a 4-bit key space (Figure 2 of the paper): the l-bit
  // prefix counts are 2, 2, 3, 5 for l = 1..4 — here scaled to 64-bit keys
  // by placing the nibble at the top.
  auto scale = [](uint64_t v) { return v << 60; };
  EXPECT_EQ(PrefixCountInRange64(scale(4), scale(8), 1), 2u);
  EXPECT_EQ(PrefixCountInRange64(scale(4), scale(8), 2), 2u);
  EXPECT_EQ(PrefixCountInRange64(scale(4), scale(8), 3), 3u);
  EXPECT_EQ(PrefixCountInRange64(scale(4), scale(8), 4), 5u);
}

TEST(Bits, PrefixRangeRoundTrip) {
  for (uint32_t l : {1u, 7u, 13u, 32u, 63u, 64u}) {
    uint64_t prefix = 0x5A5A5A5A5A5A5A5Aull >> (64 - l);
    uint64_t lo = PrefixRangeLo64(prefix, l);
    uint64_t hi = PrefixRangeHi64(prefix, l);
    EXPECT_EQ(PrefixBits64(lo, l), prefix);
    EXPECT_EQ(PrefixBits64(hi, l), prefix);
    if (hi != ~uint64_t{0}) {
      EXPECT_NE(PrefixBits64(hi + 1, l), prefix);
    }
    if (lo != 0) {
      EXPECT_NE(PrefixBits64(lo - 1, l), prefix);
    }
  }
}

TEST(BitString, GetBitPadding) {
  std::string s = "\x80";  // bit 0 set
  EXPECT_TRUE(StrGetBit(s, 0));
  for (int i = 1; i < 32; ++i) EXPECT_FALSE(StrGetBit(s, i));
}

TEST(BitString, LcpBits) {
  EXPECT_EQ(StrLcpBits("abc", "abc", 1000), 1000u);
  EXPECT_EQ(StrLcpBits("abc", "abd", 1000), 21u);  // 'c'=0x63 ^ 'd'=0x64 -> bit 5 of byte 2
  EXPECT_EQ(StrLcpBits("a", std::string("a\0\0", 3), 1000), 1000u);  // padding
  std::string b("a\0x", 3);
  EXPECT_EQ(StrLcpBits("a", b, 1000), 16u + 1u);  // 'x'=0x78, clz in byte = 1
  EXPECT_EQ(StrLcpBits("", "", 64), 64u);
}

TEST(BitString, PrefixBytesMasksPartialByte) {
  std::string s = "\xFF\xFF";
  std::string p = StrPrefix(s, 11);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(static_cast<uint8_t>(p[0]), 0xFF);
  EXPECT_EQ(static_cast<uint8_t>(p[1]), 0xE0);  // top 3 bits of second byte
}

TEST(BitString, ComparePrefix) {
  EXPECT_EQ(StrComparePrefix("abc", "abd", 16), 0);   // equal in 2 bytes
  EXPECT_LT(StrComparePrefix("abc", "abd", 24), 0);
  EXPECT_GT(StrComparePrefix("abd", "abc", 24), 0);
  EXPECT_EQ(StrComparePrefix("a", std::string("a\0", 2), 64), 0);
}

TEST(BitString, PrefixCountInRangeSmall) {
  // Single byte keys, l = 8: prefixes are the bytes themselves.
  EXPECT_EQ(StrPrefixCountInRange("\x04", "\x08", 8), 5u);
  EXPECT_EQ(StrPrefixCountInRange("\x04", "\x08", 5), 2u);  // 00000 vs 00001
  EXPECT_EQ(StrPrefixCountInRange("a", "a", 800), 1u);
}

TEST(BitString, PrefixCountMatchesIntSemantics) {
  // Encode 64-bit integers as 8-byte big-endian strings; counts must agree
  // with PrefixCountInRange64 for l <= 64.
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    uint64_t a = rng.Next();
    uint64_t b = rng.Next();
    if (a > b) std::swap(a, b);
    std::string sa(8, '\0'), sb(8, '\0');
    for (int i = 0; i < 8; ++i) {
      sa[i] = static_cast<char>(a >> (56 - 8 * i));
      sb[i] = static_cast<char>(b >> (56 - 8 * i));
    }
    for (uint32_t l : {1u, 5u, 8u, 17u, 33u, 64u}) {
      ASSERT_EQ(StrPrefixCountInRange(sa, sb, l), PrefixCountInRange64(a, b, l))
          << "l=" << l << " a=" << a << " b=" << b;
    }
  }
}

TEST(BitString, PrefixSuccessor) {
  std::string out;
  ASSERT_TRUE(StrPrefixSuccessor("\x01", 8, &out));
  EXPECT_EQ(out, "\x02");
  // Partial byte: successor of the 3-bit prefix 010 is 011 -> 0x60.
  ASSERT_TRUE(StrPrefixSuccessor("\x40", 3, &out));
  EXPECT_EQ(static_cast<uint8_t>(out[0]), 0x60);
  // Carry across bytes.
  std::string in("\x00\xFF", 2);
  ASSERT_TRUE(StrPrefixSuccessor(in, 16, &out));
  EXPECT_EQ(static_cast<uint8_t>(out[0]), 0x01);
  EXPECT_EQ(static_cast<uint8_t>(out[1]), 0x00);
  // Overflow.
  std::string all_ones("\xFF\xFF", 2);
  EXPECT_FALSE(StrPrefixSuccessor(all_ones, 16, &out));
}

TEST(BitString, SuccessorEnumeratesRange) {
  // Enumerate all 5-bit prefixes between two keys and count them.
  std::string lo = "\x10";  // 00010...
  std::string hi = "\x90";  // 10010...
  uint64_t expected = StrPrefixCountInRange(lo, hi, 5);
  std::string p = StrPrefix(lo, 5);
  std::string last = StrPrefix(hi, 5);
  uint64_t n = 1;
  while (p != last) {
    ASSERT_TRUE(StrPrefixSuccessor(p, 5, &p));
    ++n;
    ASSERT_LE(n, 32u);
  }
  EXPECT_EQ(n, expected);
}

}  // namespace
}  // namespace proteus
