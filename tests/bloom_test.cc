// Tests for BloomFilter and the prefix Bloom filters: no false negatives,
// FPR close to Eq. 6, serialization round-trip, range probing semantics,
// and |K_l| prefix counting.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/prefix_bloom.h"
#include "util/bits.h"
#include "util/random.h"

namespace proteus {
namespace {

std::vector<uint64_t> RandomSortedKeys(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::set<uint64_t> s;
  while (s.size() < n) s.insert(rng.Next());
  return {s.begin(), s.end()};
}

TEST(BloomFilter, NoFalseNegativesInt) {
  auto keys = RandomSortedKeys(5000, 1);
  BloomFilter bf(keys.size() * 10, BloomFilter::OptimalHashes(keys.size() * 10,
                                                              keys.size()));
  for (uint64_t k : keys) bf.InsertInt(k);
  for (uint64_t k : keys) EXPECT_TRUE(bf.MayContainInt(k));
}

TEST(BloomFilter, FprMatchesTheory) {
  auto keys = RandomSortedKeys(20000, 2);
  std::set<uint64_t> keyset(keys.begin(), keys.end());
  for (uint64_t bpk : {8, 12, 16}) {
    uint64_t m = keys.size() * bpk;
    BloomFilter bf(m, BloomFilter::OptimalHashes(m, keys.size()));
    for (uint64_t k : keys) bf.InsertInt(k);
    Rng rng(3);
    int fp = 0;
    int probes = 200000;
    for (int i = 0; i < probes; ++i) {
      uint64_t q = rng.Next();
      if (keyset.count(q)) {
        --i;
        continue;
      }
      if (bf.MayContainInt(q)) ++fp;
    }
    double observed = static_cast<double>(fp) / probes;
    double expected = BloomFilter::TheoreticalFpr(m, keys.size());
    EXPECT_NEAR(observed, expected, expected * 0.5 + 0.002)
        << "bpk=" << bpk;
  }
}

TEST(BloomFilter, StringItems) {
  BloomFilter bf(4096, 4);
  std::vector<std::string> items = {"alpha", "beta", "gamma", std::string("a\0b", 3)};
  for (const auto& s : items) bf.InsertBytes(s);
  for (const auto& s : items) EXPECT_TRUE(bf.MayContainBytes(s));
}

TEST(BloomFilter, SerializationRoundTrip) {
  auto keys = RandomSortedKeys(1000, 4);
  BloomFilter bf(8192, 5);
  for (uint64_t k : keys) bf.InsertInt(k);
  std::string blob;
  bf.AppendTo(&blob);
  std::string_view view = blob;
  BloomFilter parsed;
  ASSERT_TRUE(BloomFilter::ParseFrom(&view, &parsed));
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(parsed.n_bits(), bf.n_bits());
  EXPECT_EQ(parsed.n_hashes(), bf.n_hashes());
  for (uint64_t k : keys) EXPECT_TRUE(parsed.MayContainInt(k));
}

TEST(BloomFilter, ParseRejectsTruncated) {
  BloomFilter bf(8192, 5);
  std::string blob;
  bf.AppendTo(&blob);
  for (size_t cut : {0ul, 8ul, 15ul, blob.size() - 1}) {
    std::string_view view(blob.data(), cut);
    BloomFilter parsed;
    EXPECT_FALSE(BloomFilter::ParseFrom(&view, &parsed)) << cut;
  }
}

TEST(BloomFilter, OptimalHashesCap) {
  EXPECT_EQ(BloomFilter::OptimalHashes(1 << 20, 10), 32u);  // capped
  EXPECT_EQ(BloomFilter::OptimalHashes(1000, 1000), 1u);
  EXPECT_EQ(BloomFilter::OptimalHashes(10000, 1000), 7u);  // ceil(10*ln2)=7
}

TEST(BlockedBloomFilter, NoFalseNegatives) {
  auto keys = RandomSortedKeys(5000, 11);
  BloomFilter bf(keys.size() * 10,
                 BloomFilter::OptimalHashes(keys.size() * 10, keys.size()),
                 /*blocked=*/true);
  EXPECT_TRUE(bf.blocked());
  EXPECT_EQ(bf.n_bits() % BloomFilter::kBlockBits, 0u);
  for (uint64_t k : keys) bf.InsertInt(k);
  for (uint64_t k : keys) EXPECT_TRUE(bf.MayContainInt(k));
}

TEST(BlockedBloomFilter, FprMatchesBlockedTheory) {
  auto keys = RandomSortedKeys(20000, 12);
  std::set<uint64_t> keyset(keys.begin(), keys.end());
  for (uint64_t bpk : {8, 12, 16}) {
    uint64_t m = keys.size() * bpk;
    BloomFilter bf(m, BloomFilter::OptimalHashes(m, keys.size()),
                   /*blocked=*/true);
    for (uint64_t k : keys) bf.InsertInt(k);
    Rng rng(13);
    int fp = 0;
    int probes = 200000;
    for (int i = 0; i < probes; ++i) {
      uint64_t q = rng.Next();
      if (keyset.count(q)) {
        --i;
        continue;
      }
      if (bf.MayContainInt(q)) ++fp;
    }
    double observed = static_cast<double>(fp) / probes;
    double standard = BloomFilter::TheoreticalFpr(m, keys.size());
    double blocked = BloomFilter::TheoreticalFprBlocked(m, keys.size());
    // The blocked layout pays a real FPR premium over the standard layout,
    // and the Poisson-mixture model must price it accurately.
    EXPECT_GT(blocked, standard) << "bpk=" << bpk;
    EXPECT_NEAR(observed, blocked, blocked * 0.35 + 0.002) << "bpk=" << bpk;
  }
}

TEST(BlockedBloomFilter, SerializationRoundTrip) {
  auto keys = RandomSortedKeys(1000, 14);
  BloomFilter bf(16384, 6, /*blocked=*/true);
  for (uint64_t k : keys) bf.InsertInt(k);
  std::string blob;
  bf.AppendTo(&blob);
  std::string_view view = blob;
  BloomFilter parsed;
  ASSERT_TRUE(BloomFilter::ParseFrom(&view, &parsed));
  EXPECT_TRUE(view.empty());
  EXPECT_TRUE(parsed.blocked());
  EXPECT_EQ(parsed.n_bits(), bf.n_bits());
  EXPECT_EQ(parsed.n_hashes(), bf.n_hashes());
  for (uint64_t k : keys) EXPECT_TRUE(parsed.MayContainInt(k));
  Rng rng(15);
  for (int i = 0; i < 2000; ++i) {
    uint64_t q = rng.Next();
    EXPECT_EQ(parsed.MayContainInt(q), bf.MayContainInt(q));
  }
}

TEST(BlockedPrefixBloom, RangeSemanticsMatchUnblocked) {
  // Blocked probing changes the FPR constant, never the contract: any
  // range containing a key stays positive.
  auto keys = RandomSortedKeys(2000, 16);
  for (uint32_t l : {16u, 40u, 64u}) {
    PrefixBloom pb(keys, keys.size() * 12, l, /*blocked=*/true);
    for (uint64_t k : keys) {
      EXPECT_TRUE(pb.MayContain(k, k)) << "l=" << l;
      uint64_t lo = k == 0 ? 0 : k - 1;
      uint64_t hi = k == ~uint64_t{0} ? k : k + 1;
      EXPECT_TRUE(pb.MayContain(lo, hi)) << "l=" << l;
    }
  }
  std::vector<std::string> skeys = {"apple", "banana", "cherry"};
  StrPrefixBloom spb(skeys, 1 << 14, 24, /*blocked=*/true);
  for (const auto& k : skeys) EXPECT_TRUE(spb.MayContain(k, k)) << k;
}

TEST(PrefixBloom, ProbeRangeMatchesPerPrefixProbes) {
  auto keys = RandomSortedKeys(3000, 17);
  for (bool blocked : {false, true}) {
    PrefixBloom pb(keys, keys.size() * 12, 52, blocked);
    Rng rng(18);
    for (int i = 0; i < 3000; ++i) {
      uint64_t first = rng.Next() >> 12;
      uint64_t last = first + rng.NextBelow(40);
      bool expected = false;
      for (uint64_t p = first; p <= last && !expected; ++p) {
        expected = pb.ProbePrefix(p);
      }
      ASSERT_EQ(pb.ProbeRange(first, last), expected)
          << "blocked=" << blocked << " [" << first << "," << last << "]";
    }
  }
}

TEST(PrefixBloom, NoFalseNegativesOnCoveringRanges) {
  auto keys = RandomSortedKeys(2000, 5);
  for (uint32_t l : {8u, 16u, 24u, 40u, 64u}) {
    PrefixBloom pb(keys, keys.size() * 12, l);
    for (uint64_t k : keys) {
      // Any range containing k must return positive.
      EXPECT_TRUE(pb.MayContain(k, k)) << "l=" << l;
      uint64_t lo = k == 0 ? 0 : k - 1;
      uint64_t hi = k == ~uint64_t{0} ? k : k + 1;
      EXPECT_TRUE(pb.MayContain(lo, hi)) << "l=" << l;
    }
  }
}

TEST(PrefixBloom, ShortPrefixCoarseness) {
  // With an 8-bit prefix, any query inside an occupied 2^56-sized region is
  // an (expected) positive even if far from the key.
  std::vector<uint64_t> keys = {uint64_t{0xAB} << 56};
  PrefixBloom pb(keys, 1 << 12, 8);
  EXPECT_TRUE(pb.MayContain((uint64_t{0xAB} << 56) + 12345,
                            (uint64_t{0xAB} << 56) + 99999));
  // A query in an unoccupied region is almost surely negative at this size.
  int positives = 0;
  for (uint64_t p = 0; p < 200; ++p) {
    uint64_t base = (p % 2 == 0 ? uint64_t{0x10} : uint64_t{0x20}) << 56;
    if (pb.MayContain(base + p * 1000, base + p * 1000 + 10)) ++positives;
  }
  EXPECT_LT(positives, 10);
}

TEST(PrefixBloom, ProbeLimitConservative) {
  std::vector<uint64_t> keys = {1, 2, 3};
  PrefixBloom pb(keys, 4096, 64);
  // A full-key-space query would need 2^64 probes; must return true.
  EXPECT_TRUE(pb.MayContain(0, ~uint64_t{0}, /*probe_limit=*/1024));
}

TEST(StrPrefixBloom, NoFalseNegatives) {
  std::vector<std::string> keys = {"apple",  "apricot", "banana",
                                   "cherry", "damson",  "elderberry"};
  std::sort(keys.begin(), keys.end());
  for (uint32_t l : {8u, 12u, 24u, 48u}) {
    StrPrefixBloom pb(keys, 1 << 14, l);
    for (const auto& k : keys) {
      EXPECT_TRUE(pb.MayContain(k, k)) << "l=" << l << " key=" << k;
      EXPECT_TRUE(pb.MayContain("a", "zzzz")) << "l=" << l;
    }
  }
}

TEST(StrPrefixBloom, PaddingSemantics) {
  // "ab" and "ab\0\0" are indistinguishable under padding (Section 7.1).
  std::vector<std::string> keys = {"ab"};
  StrPrefixBloom pb(keys, 1 << 12, 32);
  std::string padded("ab\0\0", 4);
  EXPECT_TRUE(pb.MayContain(padded, padded));
}

TEST(CountUniquePrefixes, MatchesBruteForce) {
  auto keys = RandomSortedKeys(300, 6);
  auto all = CountUniquePrefixesAll(keys);
  for (uint32_t l = 0; l <= 64; l += 3) {
    std::set<uint64_t> uniq;
    for (uint64_t k : keys) uniq.insert(PrefixBits64(k, l));
    EXPECT_EQ(all[l], uniq.size()) << "l=" << l;
    EXPECT_EQ(CountUniquePrefixes(keys, l), uniq.size()) << "l=" << l;
  }
}

TEST(CountUniquePrefixes, ClusteredKeys) {
  // 256 keys sharing a 48-bit prefix: |K_l| == 1 for l <= 48.
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 256; ++i) {
    keys.push_back((uint64_t{0xABCD} << 48) | i);
  }
  auto all = CountUniquePrefixesAll(keys);
  for (uint32_t l = 1; l <= 48; ++l) EXPECT_EQ(all[l], 1u) << l;
  EXPECT_EQ(all[56], 1u);
  EXPECT_EQ(all[64], 256u);
}

TEST(StrCountUniquePrefixes, MatchesBruteForce) {
  std::vector<std::string> keys = {"aa", "ab", "abc", "b", "ba", "cc"};
  std::sort(keys.begin(), keys.end());
  auto all = StrCountUniquePrefixesAll(keys, 40);
  for (uint32_t l = 1; l <= 40; l += 7) {
    std::set<std::string> uniq;
    for (const auto& k : keys) uniq.insert(StrPrefix(k, l));
    EXPECT_EQ(all[l], uniq.size()) << "l=" << l;
  }
}

}  // namespace
}  // namespace proteus
